#include "graph/corpus.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>

#include "common/logging.h"
#include "common/parallel.h"
#include "graph/vuln_checker.h"

namespace fexiot {

GraphCorpusGenerator::GraphCorpusGenerator(CorpusOptions options, Rng* rng)
    : options_(std::move(options)), rng_(rng) {
  assert(!options_.platforms.empty());
  generators_.reserve(options_.platforms.size());
  for (Platform p : options_.platforms) generators_.emplace_back(p, rng);
}

RuleGenerator* GraphCorpusGenerator::GeneratorFor(Platform p) {
  for (auto& g : generators_) {
    if (g.platform() == p) return &g;
  }
  return &generators_.front();
}

RuleGenerator* GraphCorpusGenerator::RandomGenerator() {
  return &generators_[rng_->UniformInt(generators_.size())];
}

VulnerabilityType GraphCorpusGenerator::SampleVulnerabilityType() {
  const int t = 1 + static_cast<int>(rng_->UniformInt(
                        static_cast<uint64_t>(kNumInternalVulnerabilities)));
  return static_cast<VulnerabilityType>(t);
}

InteractionGraph GraphCorpusGenerator::GrowRandomGraph(int target_nodes) {
  InteractionGraph g;
  const int seed_count = std::max(1, target_nodes / 12);
  for (int s = 0; s < seed_count; ++s) {
    GraphNode node;
    node.rule = RandomGenerator()->Generate();
    g.AddNode(std::move(node));
  }
  while (g.num_nodes() < target_nodes) {
    // Extend from a random existing node's random action: the new rule's
    // trigger is fired by that action ("random chaining", Section III-A3).
    const int src = static_cast<int>(rng_->UniformInt(
        static_cast<uint64_t>(g.num_nodes())));
    const auto& actions = g.node(src).rule.actions;
    GraphNode node;
    if (!actions.empty() && rng_->Bernoulli(0.85)) {
      const Action& cause = actions[rng_->UniformInt(actions.size())];
      node.rule = RandomGenerator()->GenerateTriggeredBy(cause);
    } else {
      node.rule = RandomGenerator()->Generate();
    }
    g.AddNode(std::move(node));
  }
  FinalizeEdges(&g);
  return g;
}

void GraphCorpusGenerator::FinalizeEdges(InteractionGraph* g) {
  // The O(n^2) trigger-matching pass is rng-free, so it fans out over the
  // pool: each task fills its own row of hits, then edges are inserted
  // serially in (u, v) order — the resulting graph is bit-identical to the
  // serial double loop for any thread count.
  const int n = g->num_nodes();
  std::vector<std::vector<int>> hits(static_cast<size_t>(n));
  parallel::For(static_cast<size_t>(n), [&](size_t ui) {
    const int u = static_cast<int>(ui);
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      if (ActionTriggersRule(g->node(u).rule, g->node(v).rule)) {
        hits[ui].push_back(v);
      }
    }
  });
  for (int u = 0; u < n; ++u) {
    for (int v : hits[static_cast<size_t>(u)]) g->AddEdge(u, v);
  }
}

void GraphCorpusGenerator::ComputeFeatures(InteractionGraph* g) {
  for (int i = 0; i < g->num_nodes(); ++i) {
    GraphNode& n = g->mutable_node(i);
    n.features = ComputeNodeFeatures(n.rule, n.event_time);
  }
  std::array<double, 4> noise = options_.relational_noise;
  for (auto& v : noise) {
    if (v < 0.0) v = options_.extraction_noise;
  }
  AugmentRelationalFeatures(g, noise, rng_);
}

bool GraphCorpusGenerator::RepairToBenign(InteractionGraph* g) {
  for (int attempt = 0; attempt < 60; ++attempt) {
    const auto findings = VulnerabilityChecker::Check(*g);
    if (findings.empty()) return true;
    // Mutate one witness node: give it a fresh action on a device family
    // not used elsewhere in the graph and no environment side effects that
    // could recreate the finding.
    const auto& f = findings.front();
    const int victim =
        f.witness_nodes[rng_->UniformInt(f.witness_nodes.size())];
    std::set<DeviceType> used;
    for (int i = 0; i < g->num_nodes(); ++i) {
      if (i == victim) continue;
      used.insert(g->node(i).rule.trigger.device);
      for (const auto& a : g->node(i).rule.actions) used.insert(a.device);
    }
    std::vector<DeviceType> free_devices;
    for (DeviceType d : ActuatorTypes()) {
      if (used.count(d)) continue;
      if (GetDeviceTypeInfo(d).active_effect.has_value()) continue;
      free_devices.push_back(d);
    }
    Rule& rule = g->mutable_node(victim).rule;
    if (free_devices.empty()) {
      // Degenerate: drop extra actions instead.
      rule.actions.resize(1);
      rule.actions[0] = Action{DeviceType::kPhone, "sent"};
    } else {
      const DeviceType d =
          free_devices[rng_->UniformInt(free_devices.size())];
      rule.actions.clear();
      rule.actions.push_back(Action{d, ActiveState(d)});
    }
    // Re-render text and rebuild edges from scratch.
    rule.trigger_text = TriggerPhrase(rule.trigger);
    rule.action_text = ActionsPhrase(rule.actions);
    rule.description = RenderRuleDescription(rule);
    InteractionGraph rebuilt;
    for (int i = 0; i < g->num_nodes(); ++i) {
      GraphNode node;
      node.rule = g->node(i).rule;
      rebuilt.AddNode(std::move(node));
    }
    FinalizeEdges(&rebuilt);
    *g = std::move(rebuilt);
  }
  return VulnerabilityChecker::Check(*g).empty();
}

InteractionGraph GraphCorpusGenerator::GenerateBenign() {
  for (int attempt = 0; attempt < 20; ++attempt) {
    const int target = static_cast<int>(
        rng_->UniformInt(options_.min_nodes, options_.max_nodes));
    InteractionGraph g = GrowRandomGraph(target);
    if (!RepairToBenign(&g)) continue;
    g.set_label(0);
    g.set_vulnerability(VulnerabilityType::kNone);
    ComputeFeatures(&g);
    return g;
  }
  // Fallback: a minimal two-node benign chain.
  InteractionGraph g;
  RuleGenerator* gen = RandomGenerator();
  GraphNode a, b;
  a.rule = gen->Materialize(Trigger{DeviceType::kMotionSensor, "active"},
                            {Action{DeviceType::kLight, "on"}});
  b.rule = gen->Materialize(Trigger{DeviceType::kLight, "on"},
                            {Action{DeviceType::kPhone, "sent"}});
  g.AddNode(std::move(a));
  g.AddNode(std::move(b));
  FinalizeEdges(&g);
  g.set_label(0);
  ComputeFeatures(&g);
  return g;
}

std::vector<int> GraphCorpusGenerator::InjectVulnerability(
    InteractionGraph* g, VulnerabilityType type) {
  RuleGenerator* gen = RandomGenerator();
  auto pick_parent = [&]() {
    return static_cast<int>(
        rng_->UniformInt(static_cast<uint64_t>(g->num_nodes())));
  };
  auto conflict_device = [&]() {
    // A binary actuator for the conflicting/duplicated action.
    static const DeviceType kCandidates[] = {
        DeviceType::kLight, DeviceType::kHeater, DeviceType::kFan,
        DeviceType::kWaterValve, DeviceType::kDoorLock, DeviceType::kCamera};
    return kCandidates[rng_->UniformInt(6)];
  };

  switch (type) {
    case VulnerabilityType::kActionConflict:
    case VulnerabilityType::kActionDuplicate: {
      const int p = pick_parent();
      Rule& parent = g->mutable_node(p).rule;
      if (parent.actions.empty()) {
        parent.actions.push_back(Action{DeviceType::kSwitch, "on"});
        parent.action_text = ActionsPhrase(parent.actions);
        parent.description = RenderRuleDescription(parent);
      }
      const Action cause = parent.actions.front();
      const DeviceType d = conflict_device();
      const std::string s = ActiveState(d);
      const std::string s2 = type == VulnerabilityType::kActionConflict
                                 ? OppositeState(d, s)
                                 : s;
      GraphNode a, b;
      a.rule = gen->Materialize(Trigger{cause.device, cause.state},
                                {Action{d, s}});
      b.rule = gen->Materialize(Trigger{cause.device, cause.state},
                                {Action{d, s2}});
      const int ia = g->AddNode(std::move(a));
      const int ib = g->AddNode(std::move(b));
      return {p, ia, ib};
    }
    case VulnerabilityType::kActionRevert: {
      // Chain: A sets (D, s) ... -> Z sets (D, opposite(s)).
      const int p = pick_parent();
      const DeviceType d = conflict_device();
      const std::string s = ActiveState(d);
      Rule& head = g->mutable_node(p).rule;
      head.actions.clear();
      head.actions.push_back(Action{d, s});
      head.action_text = ActionsPhrase(head.actions);
      head.description = RenderRuleDescription(head);
      // Middle hop triggered by (d, s).
      GraphNode mid;
      mid.rule = gen->Materialize(Trigger{d, s},
                                  {Action{DeviceType::kPhone, "sent"}});
      const int im = g->AddNode(std::move(mid));
      // Tail triggered by the middle hop's action, reverting (d, s).
      GraphNode tail;
      tail.rule = gen->Materialize(Trigger{DeviceType::kPhone, "sent"},
                                   {Action{d, OppositeState(d, s)}});
      const int it = g->AddNode(std::move(tail));
      return {p, im, it};
    }
    case VulnerabilityType::kActionLoop: {
      // Three-rule cycle over binary actuators.
      const DeviceType d1 = DeviceType::kLight;
      const DeviceType d2 = DeviceType::kFan;
      const DeviceType d3 = DeviceType::kPlug;
      GraphNode r1, r2, r3;
      r1.rule = gen->Materialize(Trigger{d3, ActiveState(d3)},
                                 {Action{d1, ActiveState(d1)}});
      r2.rule = gen->Materialize(Trigger{d1, ActiveState(d1)},
                                 {Action{d2, ActiveState(d2)}});
      r3.rule = gen->Materialize(Trigger{d2, ActiveState(d2)},
                                 {Action{d3, ActiveState(d3)}});
      const int i1 = g->AddNode(std::move(r1));
      const int i2 = g->AddNode(std::move(r2));
      const int i3 = g->AddNode(std::move(r3));
      return {i1, i2, i3};
    }
    case VulnerabilityType::kConditionBlock: {
      // B waits on (X, s); A drives X to opposite(s).
      const DeviceType x = conflict_device();
      const std::string s = ActiveState(x);
      const int p = pick_parent();
      Rule& parent = g->mutable_node(p).rule;
      if (parent.actions.empty()) {
        parent.actions.push_back(Action{DeviceType::kSwitch, "on"});
        parent.action_text = ActionsPhrase(parent.actions);
        parent.description = RenderRuleDescription(parent);
      }
      const Action cause = parent.actions.front();
      GraphNode blocker, blocked;
      blocker.rule = gen->Materialize(Trigger{cause.device, cause.state},
                                      {Action{x, OppositeState(x, s)}});
      blocked.rule = gen->Materialize(
          Trigger{x, s}, {Action{DeviceType::kPhone, "sent"}});
      const int ia = g->AddNode(std::move(blocker));
      const int ib = g->AddNode(std::move(blocked));
      return {p, ia, ib};
    }
    case VulnerabilityType::kConditionBypass: {
      // U: mundane actuator fabricates a safety-sensor condition.
      // V: safety-sensor-guarded rule controlling a security device.
      const bool smoke_path = rng_->Bernoulli(0.5);
      GraphNode u, v;
      if (smoke_path) {
        u.rule = gen->Materialize(Trigger{DeviceType::kVoice, "spoken"},
                                  {Action{DeviceType::kOven, "on"}});
        v.rule = gen->Materialize(
            Trigger{DeviceType::kSmokeDetector, "detected"},
            {Action{DeviceType::kDoorLock, "unlocked"},
             Action{DeviceType::kAlarm, "on"}});
      } else {
        u.rule = gen->Materialize(Trigger{DeviceType::kClock, "sunset"},
                                  {Action{DeviceType::kWaterValve, "open"}});
        v.rule = gen->Materialize(
            Trigger{DeviceType::kLeakSensor, "wet"},
            {Action{DeviceType::kWaterValve, "closed"},
             Action{DeviceType::kPhone, "sent"}});
      }
      const int iu = g->AddNode(std::move(u));
      const int iv = g->AddNode(std::move(v));
      return {iu, iv};
    }
    case VulnerabilityType::kNone:
    case VulnerabilityType::kNumInternalTypes:
      break;
  }
  return {};
}

InteractionGraph GraphCorpusGenerator::GenerateVulnerable(
    VulnerabilityType type) {
  // Host graph: a small benign graph (leave room for injected nodes).
  const int target = std::max(
      options_.min_nodes,
      static_cast<int>(rng_->UniformInt(options_.min_nodes,
                                        std::max(options_.min_nodes,
                                                 options_.max_nodes - 3))));
  InteractionGraph g;
  for (int attempt = 0; attempt < 20; ++attempt) {
    g = GrowRandomGraph(target);
    if (RepairToBenign(&g)) break;
  }
  const std::vector<int> witness = InjectVulnerability(&g, type);
  // Rebuild edges including the injected nodes.
  InteractionGraph rebuilt;
  for (int i = 0; i < g.num_nodes(); ++i) {
    GraphNode node;
    node.rule = g.node(i).rule;
    rebuilt.AddNode(std::move(node));
  }
  FinalizeEdges(&rebuilt);
  rebuilt.set_label(1);
  rebuilt.set_vulnerability(type);
  rebuilt.set_witness(witness);
  ComputeFeatures(&rebuilt);
  return rebuilt;
}

InteractionGraph GraphCorpusGenerator::GenerateDrifting() {
  RuleGenerator* gen = RandomGenerator();
  InteractionGraph g;
  const int variant = static_cast<int>(rng_->UniformInt(uint64_t{3}));
  if (variant == 0) {
    // Long action cycle over many devices ("action reverted over time").
    static const DeviceType kRing[] = {
        DeviceType::kLight, DeviceType::kFan,     DeviceType::kPlug,
        DeviceType::kTv,    DeviceType::kSpeaker, DeviceType::kCamera};
    const int len = 5 + static_cast<int>(rng_->UniformInt(uint64_t{2}));
    for (int i = 0; i < len; ++i) {
      const DeviceType cur = kRing[i % 6];
      const DeviceType nxt = kRing[(i + 1) % 6];
      GraphNode node;
      node.rule = gen->Materialize(Trigger{cur, ActiveState(cur)},
                                   {Action{nxt, ActiveState(nxt)}});
      g.AddNode(std::move(node));
    }
  } else if (variant == 1) {
    // Dense conflicting hub: one trigger drives many contradictory
    // commands ("another action can generate fake automation conditions").
    GraphNode hub;
    hub.rule = gen->Materialize(Trigger{DeviceType::kMotionSensor, "active"},
                                {Action{DeviceType::kSwitch, "on"}});
    g.AddNode(std::move(hub));
    static const DeviceType kLeaves[] = {
        DeviceType::kLight, DeviceType::kHeater, DeviceType::kFan,
        DeviceType::kCamera, DeviceType::kWaterValve};
    for (int i = 0; i < 8; ++i) {
      const DeviceType d = kLeaves[i % 5];
      GraphNode leaf;
      const std::string state = i % 2 == 0
                                    ? ActiveState(d)
                                    : OppositeState(d, ActiveState(d));
      leaf.rule = gen->Materialize(Trigger{DeviceType::kSwitch, "on"},
                                   {Action{d, state}});
      g.AddNode(std::move(leaf));
    }
  } else {
    // Compound: several simultaneous witnesses in one graph.
    g = GrowRandomGraph(6);
    RepairToBenign(&g);
    InjectVulnerability(&g, VulnerabilityType::kActionConflict);
    InjectVulnerability(&g, VulnerabilityType::kActionLoop);
    InjectVulnerability(&g, VulnerabilityType::kConditionBypass);
  }
  // Rebuild edges and features.
  InteractionGraph rebuilt;
  for (int i = 0; i < g.num_nodes(); ++i) {
    GraphNode node;
    node.rule = g.node(i).rule;
    rebuilt.AddNode(std::move(node));
  }
  FinalizeEdges(&rebuilt);
  rebuilt.set_label(1);
  rebuilt.set_vulnerability(VulnerabilityType::kNone);  // unknown pattern
  ComputeFeatures(&rebuilt);
  return rebuilt;
}

std::vector<InteractionGraph> GraphCorpusGenerator::GenerateDataset(
    int count) {
  if (count <= 0) return {};
  // Stream splitting: the shared rng is consumed exactly once (the Fork
  // below) plus the final shuffle, so two successive GenerateDataset calls
  // still produce distinct content. Graph i is generated by a worker
  // generator seeded from base.ForkAt(i) — a pure function of (seed, i) —
  // so the fan-out is bit-identical for every thread count and schedule.
  const int num_vulnerable =
      static_cast<int>(count * options_.vulnerable_fraction + 0.5);
  std::vector<VulnerabilityType> plan(static_cast<size_t>(count),
                                      VulnerabilityType::kNone);
  for (int i = 0; i < num_vulnerable; ++i) {
    plan[static_cast<size_t>(i)] = static_cast<VulnerabilityType>(
        1 + (vuln_type_cursor_++ % kNumInternalVulnerabilities));
  }
  const Rng base = rng_->Fork();
  std::vector<InteractionGraph> out(static_cast<size_t>(count));
  parallel::For(static_cast<size_t>(count), [&](size_t i) {
    Rng child = base.ForkAt(static_cast<uint64_t>(i));
    GraphCorpusGenerator worker(options_, &child);
    for (const auto& [seed, strength] : device_profiles_) {
      worker.ApplyDeviceProfile(seed, strength);
    }
    out[i] = plan[i] == VulnerabilityType::kNone
                 ? worker.GenerateBenign()
                 : worker.GenerateVulnerable(plan[i]);
  });
  rng_->Shuffle(&out);
  return out;
}

namespace {

void FnvBytes(const void* data, size_t n, uint64_t* h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= 0x100000001b3ULL;  // FNV-1a prime
  }
}

void FnvU64(uint64_t v, uint64_t* h) { FnvBytes(&v, sizeof(v), h); }

void FnvDouble(double v, uint64_t* h) {
  // Bit pattern, not value: 0.0 vs -0.0 or any ulp drift must be caught.
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  FnvU64(bits, h);
}

void FnvString(const std::string& s, uint64_t* h) {
  FnvU64(s.size(), h);
  FnvBytes(s.data(), s.size(), h);
}

void FnvGraph(const InteractionGraph& g, uint64_t* h) {
  FnvU64(static_cast<uint64_t>(g.num_nodes()), h);
  for (int i = 0; i < g.num_nodes(); ++i) {
    const GraphNode& n = g.node(i);
    FnvU64(static_cast<uint64_t>(n.rule.platform), h);
    FnvString(n.rule.description, h);
    FnvString(n.rule.trigger_text, h);
    FnvString(n.rule.action_text, h);
    FnvDouble(n.event_time, h);
    FnvU64(n.features.size(), h);
    for (double f : n.features) FnvDouble(f, h);
  }
  FnvU64(static_cast<uint64_t>(g.num_edges()), h);
  for (const auto& [u, v] : g.edges()) {
    FnvU64(static_cast<uint64_t>(u), h);
    FnvU64(static_cast<uint64_t>(v), h);
  }
  FnvU64(static_cast<uint64_t>(g.label()), h);
  FnvU64(static_cast<uint64_t>(g.vulnerability()), h);
  FnvU64(g.witness().size(), h);
  for (int w : g.witness()) FnvU64(static_cast<uint64_t>(w), h);
}

}  // namespace

uint64_t CorpusContentFingerprint(
    const std::vector<InteractionGraph>& graphs) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  FnvU64(graphs.size(), &h);
  for (const auto& g : graphs) FnvGraph(g, &h);
  return h;
}

uint64_t FederatedCorpusContentFingerprint(const FederatedCorpus& corpus) {
  uint64_t h = CorpusContentFingerprint(corpus.data.graphs());
  FnvU64(corpus.partition.indices.size(), &h);
  for (const auto& shard : corpus.partition.indices) {
    FnvU64(shard.size(), &h);
    for (size_t i : shard) FnvU64(i, &h);
  }
  for (int c : corpus.partition.client_cluster) {
    FnvU64(static_cast<uint64_t>(c), &h);
  }
  FnvU64(corpus.cluster_tests.size(), &h);
  for (const auto& pool : corpus.cluster_tests) {
    FnvU64(CorpusContentFingerprint(pool.graphs()), &h);
  }
  return h;
}

CorpusStats ComputeCorpusStats(const std::vector<InteractionGraph>& graphs) {
  CorpusStats s;
  s.total_graphs = static_cast<int>(graphs.size());
  if (graphs.empty()) return s;
  s.min_nodes = graphs.front().num_nodes();
  double nodes_sum = 0.0, edges_sum = 0.0;
  for (const auto& g : graphs) {
    if (g.label() == 1) ++s.vulnerable_graphs;
    s.min_nodes = std::min(s.min_nodes, g.num_nodes());
    s.max_nodes = std::max(s.max_nodes, g.num_nodes());
    nodes_sum += g.num_nodes();
    edges_sum += g.num_edges();
  }
  s.avg_nodes = nodes_sum / s.total_graphs;
  s.avg_edges = edges_sum / s.total_graphs;
  return s;
}



void GraphCorpusGenerator::ApplyDeviceProfile(uint64_t profile_seed,
                                              double strength) {
  device_profiles_.emplace_back(profile_seed, strength);
  for (auto& gen : generators_) {
    gen.ApplyDeviceProfile(profile_seed, strength);
  }
}

namespace {

/// One planned federated-corpus sample: which cluster generates it, what
/// content it carries, and where it lands. All rng draws that decide a
/// plan happen serially up front, so the parallel generation phase below
/// is rng-free on the shared stream.
struct FederatedSamplePlan {
  int cluster = 0;
  bool test = false;
  /// kNone = plain benign; otherwise the type to plant. idiom_benign
  /// means: plant the cluster's idiom pattern but relabel it benign.
  VulnerabilityType type = VulnerabilityType::kNone;
  bool idiom_benign = false;
};

}  // namespace

FederatedCorpus BuildClusteredFederatedCorpus(
    const CorpusOptions& base, int total_graphs, int num_clients,
    int num_clusters, double alpha, double profile_strength, Rng* rng) {
  assert(rng != nullptr);
  assert(num_clients > 0 && num_clusters > 0);
  num_clusters = std::min(num_clusters, num_clients);
  FederatedCorpus out;
  out.partition.indices.resize(static_cast<size_t>(num_clients));
  out.partition.client_cluster.resize(static_cast<size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    out.partition.client_cluster[static_cast<size_t>(c)] = c % num_clusters;
  }
  out.cluster_tests.resize(static_cast<size_t>(num_clusters));

  // --- Phase 1 (serial): plan every sample's cluster/content/destination,
  // consuming the shared rng in a fixed order.
  std::vector<FederatedSamplePlan> plans;
  plans.reserve(static_cast<size_t>(total_graphs));
  std::vector<int> train_quota(static_cast<size_t>(num_clusters), 0);
  for (int k = 0; k < num_clusters; ++k) {
    const int quota = total_graphs / num_clusters +
                      (k < total_graphs % num_clusters ? 1 : 0);
    // 20% of the quota becomes the held-out test pool for this cluster.
    const int test_q = std::max(2, quota / 5);
    const int train_q = quota - test_q;
    train_quota[static_cast<size_t>(k)] = train_q;
    // The cluster's *benign idiom*: one interaction pattern that counts as
    // a vulnerability elsewhere but is an intended automation habit in
    // this household cluster (e.g. deliberately duplicated actions). This
    // label-convention conflict is the concept heterogeneity that makes
    // plain FedAvg degrade and clustering recover (Section III-B2).
    const auto idiom = static_cast<VulnerabilityType>(
        1 + (k % kNumInternalVulnerabilities));
    auto plan_sample = [&](bool vulnerable, bool test) {
      FederatedSamplePlan p;
      p.cluster = k;
      p.test = test;
      if (!vulnerable) {
        // Half the benign samples exhibit the cluster's idiom pattern.
        p.idiom_benign = rng->Bernoulli(0.5);
        p.type = p.idiom_benign ? idiom : VulnerabilityType::kNone;
        return p;
      }
      // 80%: one of the cluster's two home vulnerability types; 20%: any —
      // but never the idiom, which is benign here.
      int t;
      do {
        if (rng->Bernoulli(0.8)) {
          const int base_t = (2 * k) % kNumInternalVulnerabilities;
          t = 1 + (base_t + static_cast<int>(rng->UniformInt(uint64_t{2}))) %
                      kNumInternalVulnerabilities;
        } else {
          t = 1 + static_cast<int>(rng->UniformInt(
                      static_cast<uint64_t>(kNumInternalVulnerabilities)));
        }
      } while (t == static_cast<int>(idiom));
      p.type = static_cast<VulnerabilityType>(t);
      return p;
    };
    const int num_vuln =
        static_cast<int>(train_q * base.vulnerable_fraction + 0.5);
    for (int i = 0; i < train_q; ++i) {
      plans.push_back(plan_sample(i < num_vuln, /*test=*/false));
    }
    // Test pools are class-balanced so that a class-starved client model
    // scores near 0.5, matching the evaluation regime of Figure 4.
    const int test_vuln = test_q / 2;
    for (int i = 0; i < test_q; ++i) {
      plans.push_back(plan_sample(i < test_vuln, /*test=*/true));
    }
  }

  // --- Phase 2 (parallel): generate every planned graph from its own
  // ForkAt(i) stream; per-cluster device profiles (covariate shift) are
  // re-applied inside each worker. Written by index — bit-identical for
  // any thread count.
  const Rng fork_base = rng->Fork();
  std::vector<InteractionGraph> graphs(plans.size());
  parallel::For(plans.size(), [&](size_t i) {
    const FederatedSamplePlan& p = plans[i];
    Rng child = fork_base.ForkAt(static_cast<uint64_t>(i));
    GraphCorpusGenerator worker(base, &child);
    worker.ApplyDeviceProfile(
        0xfeed0000ULL + static_cast<uint64_t>(p.cluster), profile_strength);
    if (p.type == VulnerabilityType::kNone) {
      graphs[i] = worker.GenerateBenign();
    } else {
      graphs[i] = worker.GenerateVulnerable(p.type);
      if (p.idiom_benign) {
        graphs[i].set_label(0);
        graphs[i].set_vulnerability(VulnerabilityType::kNone);
        graphs[i].set_witness({});
      }
    }
  });

  // --- Phase 3 (serial): assemble pools and spread each cluster's train
  // samples over its clients with Dirichlet label skew.
  size_t next_plan = 0;
  for (int k = 0; k < num_clusters; ++k) {
    std::vector<size_t> cluster_samples;
    while (next_plan < plans.size() && plans[next_plan].cluster == k) {
      const FederatedSamplePlan& p = plans[next_plan];
      if (p.test) {
        out.cluster_tests[static_cast<size_t>(k)].Add(
            std::move(graphs[next_plan]));
      } else {
        cluster_samples.push_back(out.data.size());
        out.data.Add(std::move(graphs[next_plan]));
      }
      ++next_plan;
    }
    assert(static_cast<int>(cluster_samples.size()) ==
           train_quota[static_cast<size_t>(k)]);
    rng->Shuffle(&cluster_samples);

    std::vector<int> clients;
    for (int c = 0; c < num_clients; ++c) {
      if (out.partition.client_cluster[static_cast<size_t>(c)] == k) {
        clients.push_back(c);
      }
    }
    if (clients.empty()) continue;
    const std::vector<double> prop =
        rng->Dirichlet(alpha, static_cast<int>(clients.size()));
    size_t cursor = 0;
    for (size_t ci = 0; ci < clients.size(); ++ci) {
      size_t take =
          ci + 1 == clients.size()
              ? cluster_samples.size() - cursor
              : static_cast<size_t>(prop[ci] *
                                    static_cast<double>(
                                        cluster_samples.size()));
      take = std::min(take, cluster_samples.size() - cursor);
      for (size_t j = 0; j < take; ++j) {
        out.partition.indices[static_cast<size_t>(clients[ci])].push_back(
            cluster_samples[cursor + j]);
      }
      cursor += take;
    }
  }
  // Every client keeps at least kMinPerClass samples of each class (a
  // house observes at least a few incidents of both kinds over time; the
  // local SGD head needs both classes to be fittable at all). Donors are
  // the clients holding the most of that class.
  constexpr int kMinPerClass = 3;
  auto count_class = [&](const std::vector<size_t>& shard, int label) {
    int n = 0;
    for (size_t i : shard) n += out.data.graph(i).label() == label ? 1 : 0;
    return n;
  };
  for (int label = 0; label <= 1; ++label) {
    for (auto& client : out.partition.indices) {
      while (count_class(client, label) < kMinPerClass) {
        // Find the richest donor for this class.
        std::vector<size_t>* donor = nullptr;
        int best = kMinPerClass;
        for (auto& other : out.partition.indices) {
          if (&other == &client) continue;
          const int have = count_class(other, label);
          if (have > best) {
            best = have;
            donor = &other;
          }
        }
        if (donor == nullptr) break;
        for (size_t k = donor->size(); k-- > 0;) {
          if (out.data.graph((*donor)[k]).label() == label) {
            client.push_back((*donor)[k]);
            donor->erase(donor->begin() + static_cast<long>(k));
            break;
          }
        }
      }
    }
  }
  return out;
}

std::vector<InteractionGraph> MaterializeClientShard(
    const CorpusOptions& base, uint64_t corpus_seed, uint64_t client_id,
    int graphs_per_client, int num_clusters, double profile_strength) {
  if (graphs_per_client <= 0) return {};
  // Every draw below comes from the ForkAt(client_id) child stream, so
  // the shard depends only on (options, corpus_seed, client_id) — never
  // on which other clients were materialized, in what order, or on how
  // many threads are running.
  Rng root(corpus_seed);
  Rng child = root.ForkAt(client_id);
  GraphCorpusGenerator worker(base, &child);
  if (num_clusters > 0 && profile_strength > 0.0) {
    worker.ApplyDeviceProfile(
        0xfeed0000ULL + client_id % static_cast<uint64_t>(num_clusters),
        profile_strength);
  }
  const int num_vulnerable = static_cast<int>(
      graphs_per_client * base.vulnerable_fraction + 0.5);
  std::vector<InteractionGraph> shard;
  shard.reserve(static_cast<size_t>(graphs_per_client));
  for (int i = 0; i < graphs_per_client; ++i) {
    if (i < num_vulnerable) {
      // Vulnerability types cycle with a per-client phase so neighboring
      // clients do not all open with the same witness class.
      const auto type = static_cast<VulnerabilityType>(
          1 + static_cast<int>((client_id + static_cast<uint64_t>(i)) %
                               kNumInternalVulnerabilities));
      shard.push_back(worker.GenerateVulnerable(type));
    } else {
      shard.push_back(worker.GenerateBenign());
    }
  }
  // Mix the label blocks so a suffix train/test split sees both classes
  // with high probability; the shuffle consumes the same child stream.
  child.Shuffle(&shard);
  return shard;
}

uint64_t ClientShardFingerprint(const CorpusOptions& base,
                                uint64_t corpus_seed, uint64_t client_id,
                                int graphs_per_client, int num_clusters,
                                double profile_strength) {
  return CorpusContentFingerprint(
      MaterializeClientShard(base, corpus_seed, client_id, graphs_per_client,
                             num_clusters, profile_strength));
}

}  // namespace fexiot
