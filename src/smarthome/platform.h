#pragma once

#include <vector>

#include "common/rng.h"
#include "smarthome/rule.h"

namespace fexiot {

/// \brief Per-platform automation-rule generator.
///
/// Substitutes for the paper's crawled corpora (SmartThings apps, Home
/// Assistant blueprints, IFTTT applets, Google Assistant services, Alexa
/// skills): samples structured trigger-action rules and renders them with
/// the platform's characteristic phrasing. Each platform has a biased
/// device vocabulary, which is what makes multi-platform graph datasets
/// heterogeneous (Section IV-A).
class RuleGenerator {
 public:
  RuleGenerator(Platform platform, Rng* rng);

  /// Samples one rule with a fresh id.
  Rule Generate();

  /// Samples \p count rules.
  std::vector<Rule> Generate(int count);

  /// \brief Samples a rule whose trigger is fired by \p cause (used when
  /// chaining rules into graphs). The rule's trigger matches the causal
  /// consequence of the action; its own actions are random.
  Rule GenerateTriggeredBy(const Action& cause);

  /// \brief Samples a rule with the exact \p trigger and \p actions,
  /// rendering platform text. Used by vulnerability injectors that need
  /// precise structure.
  Rule Materialize(const Trigger& trigger, std::vector<Action> actions);

  /// \brief Skews the generator's device vocabulary: multiplies each
  /// device's sampling weight by exp(strength * N(0,1)) drawn from
  /// \p profile_seed. Distinct seeds model households/clusters deploying
  /// different device families (the covariate heterogeneity of
  /// Section III-B2).
  void ApplyDeviceProfile(uint64_t profile_seed, double strength);

  Platform platform() const { return platform_; }

 private:
  Trigger SampleTrigger();
  std::vector<Action> SampleActions(int max_actions);
  DeviceType SampleActuator();
  void Render(Rule* rule) const;

  Platform platform_;
  Rng* rng_;
  int next_id_ = 1;
  std::vector<double> actuator_weights_;
  std::vector<double> trigger_weights_;
};

/// \brief Renders the full description of a rule using its platform's
/// phrasing template (e.g. SmartThings "If <trigger>, <actions>.",
/// Alexa "alexa, <action>").
std::string RenderRuleDescription(const Rule& rule);

/// \brief Lists triggers that a rule's trigger device can produce.
std::vector<Trigger> PossibleTriggers(DeviceType device);

}  // namespace fexiot
