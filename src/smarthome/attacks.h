#pragma once

#include "common/rng.h"
#include "smarthome/event_log.h"
#include "smarthome/home.h"
#include "smarthome/vulnerability.h"

namespace fexiot {

/// \brief Outcome of an attack injection: the tampered log plus which
/// entries were affected (ground truth for evaluation).
struct AttackResult {
  EventLog log;
  AttackType type = AttackType::kFakeEvent;
  /// Indices (into log.entries()) of injected entries, if any.
  std::vector<size_t> injected_indices;
  /// Number of genuine entries removed (event-loss / stealthy command).
  int removed_entries = 0;
};

/// \brief Injects external attacks into event logs by modification,
/// following HAWatcher's five attack classes (Section IV-A):
/// fake events, fake commands, stealthy commands, command failures and
/// event losses.
class AttackInjector {
 public:
  AttackInjector(const Home& home, Rng* rng) : home_(home), rng_(rng) {}

  /// Applies \p type to a copy of \p log with \p intensity in (0, 1]
  /// controlling how many records are affected.
  AttackResult Inject(const EventLog& log, AttackType type,
                      double intensity = 0.1) const;

 private:
  AttackResult InjectFakeEvent(EventLog log, double intensity) const;
  AttackResult InjectFakeCommand(EventLog log, double intensity) const;
  AttackResult InjectStealthyCommand(EventLog log, double intensity) const;
  AttackResult InjectCommandFailure(EventLog log, double intensity) const;
  AttackResult InjectEventLoss(EventLog log, double intensity) const;

  LogEntry MakeFakeEntry(double timestamp, LogKind kind) const;

  const Home& home_;
  Rng* rng_;
};

}  // namespace fexiot
