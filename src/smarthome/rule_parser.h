#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "smarthome/rule.h"

namespace fexiot {

/// \brief Parses a natural-language automation-rule description back into
/// the structured trigger-action form — the inverse of the platform
/// renderers, and the piece that lets FexIoT ingest *crawled* rule text
/// the way the paper does (Section III-A1).
///
/// Handles the five platform phrasings ("If <trigger>, then <action>",
/// "when <trigger> then <action>", "<Action> if <trigger>",
/// "alexa, <action>", "ok google, <action>") plus free-form variants the
/// shallow parser can segment. Device nouns resolve through the lexicon
/// (synonyms included); states resolve through the device's state domain
/// with verb mapping (lock -> locked, open -> open, start -> running...).
class RuleParser {
 public:
  /// \brief Parses \p description. Fails with InvalidArgument when no
  /// device/action can be recovered. Voice-command phrasings get the
  /// kVoice trigger.
  static Result<Rule> Parse(const std::string& description);

  /// \brief Resolves a noun (possibly a synonym) to a device type.
  static bool ResolveDevice(const std::string& noun, DeviceType* out);

  /// \brief Maps the clause's verbs/state words onto a state in
  /// \p device's domain ("turn on" -> "on", "lock" -> "locked",
  /// "detected" -> "detected"). Falls back to the active state.
  static bool ResolveState(DeviceType device,
                           const std::vector<std::string>& clause,
                           std::string* out);
};

}  // namespace fexiot
