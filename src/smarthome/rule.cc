#include "smarthome/rule.h"

#include <cassert>

namespace fexiot {

const char* PlatformName(Platform p) {
  switch (p) {
    case Platform::kSmartThings:
      return "SmartThings";
    case Platform::kHomeAssistant:
      return "HomeAssistant";
    case Platform::kIfttt:
      return "IFTTT";
    case Platform::kGoogleAssistant:
      return "GoogleAssistant";
    case Platform::kAlexa:
      return "Alexa";
    case Platform::kNumPlatforms:
      break;
  }
  return "Unknown";
}

std::string TriggerPhrase(const Trigger& trigger) {
  const auto& info = GetDeviceTypeInfo(trigger.device);
  const std::string& noun = info.noun;
  const std::string& st = trigger.state;
  switch (trigger.device) {
    case DeviceType::kClock:
      return "it is " + st;
    case DeviceType::kVoice:
      return "a voice command is spoken";
    case DeviceType::kSmokeDetector:
    case DeviceType::kCoDetector:
      return st == "detected" ? noun + " is detected" : noun + " is cleared";
    case DeviceType::kMotionSensor:
      return st == "active" ? "motion is detected" : "motion stops";
    case DeviceType::kLeakSensor:
      return st == "wet" ? "a water leak is detected" : "the leak sensor is dry";
    case DeviceType::kHumiditySensor:
    case DeviceType::kTemperatureSensor:
      return "the " + noun + " is " + st;
    case DeviceType::kDoorbell:
      return st == "ringing" ? "the doorbell rings" : "the doorbell is idle";
    default:
      break;
  }
  // Generic device-state triggers.
  if (st == "on" || st == "off") return "the " + noun + " turns " + st;
  if (st == "open") return "the " + noun + " is opened";
  if (st == "closed") return "the " + noun + " is closed";
  if (st == "locked" || st == "unlocked") return "the " + noun + " is " + st;
  return "the " + noun + " becomes " + st;
}

std::string ActionPhrase(const Action& action) {
  const auto& info = GetDeviceTypeInfo(action.device);
  const std::string& noun = info.noun;
  const std::string& st = action.state;
  switch (action.device) {
    case DeviceType::kPhone:
      return "send a notification";
    case DeviceType::kAlarm:
      return st == "on" ? "start the alarm beeping" : "stop the alarm";
    case DeviceType::kVacuum:
      return st == "running" ? "start the vacuum" : "stop the vacuum";
    case DeviceType::kDoorbell:
      return "ring the doorbell";
    default:
      break;
  }
  if (st == "on" || st == "off") return "turn " + st + " the " + noun;
  if (st == "open") return "open the " + noun;
  if (st == "closed") return "close the " + noun;
  if (st == "locked") return "lock the " + noun;
  if (st == "unlocked") return "unlock the " + noun;
  if (st == "heat") return "set the " + noun + " to heat";
  return "set the " + noun + " to " + st;
}

std::string ActionsPhrase(const std::vector<Action>& actions) {
  std::string out;
  for (size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) out += " and ";
    out += ActionPhrase(actions[i]);
  }
  return out;
}

bool ActionCausesTrigger(const Action& act, const Trigger& trig) {
  // Direct device-state causality (same device type reaching the state).
  if (act.device == trig.device && act.state == trig.state) return true;

  // Environment-channel causality: the action's active-state effect feeds
  // the sensor channel the trigger observes.
  const auto& act_info = GetDeviceTypeInfo(act.device);
  const auto& trig_info = GetDeviceTypeInfo(trig.device);
  if (!act_info.active_effect.has_value()) return false;
  if (trig_info.sensed_channel == EnvChannel::kNone) return false;
  // Effect applies when the action drives the device into its active state.
  if (act.state != ActiveState(act.device)) return false;
  const EnvEffect& eff = *act_info.active_effect;
  if (eff.channel != trig_info.sensed_channel) return false;

  // Direction matters for numeric sensors: a heater (increase) fires the
  // "high" trigger, an AC (decrease) fires "low". Binary event sensors
  // (smoke, leak, motion) fire their active state on any increase.
  if (trig_info.is_numeric) {
    const bool wants_high = trig.state == "high";
    return wants_high == (eff.direction == EffectDirection::kIncrease);
  }
  return eff.direction == EffectDirection::kIncrease &&
         trig.state == ActiveState(trig.device);
}

bool ActionTriggersRule(const Rule& a, const Rule& b) {
  for (const Action& act : a.actions) {
    if (ActionCausesTrigger(act, b.trigger)) return true;
  }
  return false;
}

}  // namespace fexiot
