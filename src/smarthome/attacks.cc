#include "smarthome/attacks.h"

#include <algorithm>
#include <cassert>

namespace fexiot {

LogEntry AttackInjector::MakeFakeEntry(double timestamp, LogKind kind) const {
  assert(!home_.devices.empty());
  const Device& d =
      home_.devices[rng_->UniformInt(home_.devices.size())];
  const auto& info = GetDeviceTypeInfo(d.type);
  LogEntry e;
  e.timestamp = timestamp;
  e.device_id = d.id;
  e.device = d.type;
  e.attribute = info.attribute;
  e.value = info.states[rng_->UniformInt(info.states.size())];
  e.kind = kind;
  e.source_rule_id = -1;
  return e;
}

AttackResult AttackInjector::Inject(const EventLog& log, AttackType type,
                                    double intensity) const {
  switch (type) {
    case AttackType::kFakeEvent:
      return InjectFakeEvent(log, intensity);
    case AttackType::kFakeCommand:
      return InjectFakeCommand(log, intensity);
    case AttackType::kStealthyCommand:
      return InjectStealthyCommand(log, intensity);
    case AttackType::kCommandFailure:
      return InjectCommandFailure(log, intensity);
    case AttackType::kEventLoss:
      return InjectEventLoss(log, intensity);
    case AttackType::kNumAttackTypes:
      break;
  }
  AttackResult r;
  r.log = log;
  return r;
}

AttackResult AttackInjector::InjectFakeEvent(EventLog log,
                                             double intensity) const {
  // Insert spoofed state-change events (e.g. a DolphinAttack-style fake
  // "motion active") that no physical cause produced.
  AttackResult result;
  result.type = AttackType::kFakeEvent;
  const int count =
      std::max(1, static_cast<int>(intensity * log.size() * 0.5));
  const double horizon =
      log.empty() ? 3600.0 : log.entries().back().timestamp;
  for (int i = 0; i < count; ++i) {
    LogEntry fake =
        MakeFakeEntry(rng_->Uniform(0.0, horizon), LogKind::kStateChange);
    log.Append(std::move(fake));
  }
  log.SortByTime();
  result.log = std::move(log);
  return result;
}

AttackResult AttackInjector::InjectFakeCommand(EventLog log,
                                               double intensity) const {
  // Insert forged command records followed by the state change they cause.
  AttackResult result;
  result.type = AttackType::kFakeCommand;
  const int count =
      std::max(1, static_cast<int>(intensity * log.size() * 0.5));
  const double horizon =
      log.empty() ? 3600.0 : log.entries().back().timestamp;
  for (int i = 0; i < count; ++i) {
    const double t = rng_->Uniform(0.0, horizon);
    LogEntry cmd = MakeFakeEntry(t, LogKind::kCommand);
    LogEntry effect = cmd;
    effect.timestamp = t + 0.2;
    effect.kind = LogKind::kStateChange;
    log.Append(std::move(cmd));
    log.Append(std::move(effect));
  }
  log.SortByTime();
  result.log = std::move(log);
  return result;
}

AttackResult AttackInjector::InjectStealthyCommand(EventLog log,
                                                   double intensity) const {
  // The attacker actuates devices while suppressing the command records:
  // state changes remain but their causal command entries disappear.
  AttackResult result;
  result.type = AttackType::kStealthyCommand;
  std::vector<LogEntry> kept;
  int removed = 0;
  for (const auto& e : log.entries()) {
    if (e.kind == LogKind::kCommand && rng_->Bernoulli(intensity)) {
      ++removed;
      continue;
    }
    kept.push_back(e);
  }
  result.removed_entries = removed;
  result.log = EventLog(std::move(kept));
  return result;
}

AttackResult AttackInjector::InjectCommandFailure(EventLog log,
                                                  double intensity) const {
  // Commands are logged but the device never reaches the state: drop the
  // state-change record that follows a command within a short window.
  AttackResult result;
  result.type = AttackType::kCommandFailure;
  const auto& entries = log.entries();
  std::vector<bool> drop(entries.size(), false);
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].kind != LogKind::kCommand) continue;
    if (!rng_->Bernoulli(intensity)) continue;
    for (size_t j = i + 1; j < entries.size(); ++j) {
      if (entries[j].timestamp > entries[i].timestamp + 2.0) break;
      if (entries[j].kind == LogKind::kStateChange &&
          entries[j].device_id == entries[i].device_id &&
          entries[j].value == entries[i].value) {
        drop[j] = true;
        break;
      }
    }
  }
  std::vector<LogEntry> kept;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (drop[i]) {
      ++result.removed_entries;
    } else {
      kept.push_back(entries[i]);
    }
  }
  result.log = EventLog(std::move(kept));
  return result;
}

AttackResult AttackInjector::InjectEventLoss(EventLog log,
                                             double intensity) const {
  // Jam / drop genuine telemetry uniformly at random.
  AttackResult result;
  result.type = AttackType::kEventLoss;
  std::vector<LogEntry> kept;
  for (const auto& e : log.entries()) {
    if (rng_->Bernoulli(intensity)) {
      ++result.removed_entries;
      continue;
    }
    kept.push_back(e);
  }
  result.log = EventLog(std::move(kept));
  return result;
}

}  // namespace fexiot
