#include "smarthome/rule_parser.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "nlp/lexicon.h"
#include "nlp/tokenizer.h"

namespace fexiot {
namespace {

// Canonical noun -> device type (inverse of DeviceNoun, via the lexicon's
// synonym canonicalization).
const std::map<std::string, DeviceType>& NounTable() {
  static const std::map<std::string, DeviceType> kTable = [] {
    std::map<std::string, DeviceType> t;
    for (DeviceType d : AllDeviceTypes()) {
      t[DeviceNoun(d)] = d;
    }
    // Extra surface forms beyond the canonical nouns.
    t["time"] = DeviceType::kClock;
    t["sunset"] = DeviceType::kClock;
    t["sunrise"] = DeviceType::kClock;
    t["water"] = DeviceType::kLeakSensor;
    return t;
  }();
  return kTable;
}

// Verb -> implied state word (matched against the device's domain later).
const std::map<std::string, std::vector<std::string>>& VerbStates() {
  static const std::map<std::string, std::vector<std::string>> kTable = {
      {"lock", {"locked"}},      {"unlock", {"unlocked"}},
      {"open", {"open"}},        {"close", {"closed"}},
      {"shut", {"closed"}},      {"start", {"on", "running", "ringing"}},
      {"stop", {"off", "stopped"}}, {"ring", {"ringing"}},
      {"send", {"sent"}},        {"notify", {"sent"}},
      {"detect", {"detected"}},  {"beep", {"on"}},
  };
  return kTable;
}

// Splits a description into (trigger clause, action clause) token lists.
// Returns false for action-only voice commands.
bool SplitClauses(const std::string& description,
                  std::vector<std::string>* trigger,
                  std::vector<std::string>* action) {
  const std::string lower = ToLower(description);
  // Voice platforms: "alexa, <action>" / "ok google, <action>".
  if (StartsWith(lower, "alexa") || StartsWith(lower, "ok google")) {
    *action = Tokenizer::Tokenize(lower);
    // Drop the wake words.
    while (!action->empty() &&
           (action->front() == "alexa" || action->front() == "ok" ||
            action->front() == "google")) {
      action->erase(action->begin());
    }
    return false;
  }
  const std::vector<std::string> tokens = Tokenizer::Tokenize(lower);
  // Find the first clause marker.
  size_t marker = tokens.size();
  bool marker_is_if = false;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] == "if" || tokens[i] == "when") {
      marker = i;
      marker_is_if = true;
      break;
    }
  }
  if (!marker_is_if) {
    // No marker: treat everything as the action clause.
    *action = tokens;
    return false;
  }
  // "<action> if <trigger>" vs "if <trigger> then <action>".
  if (marker > 0) {
    action->assign(tokens.begin(),
                   tokens.begin() + static_cast<long>(marker));
    trigger->assign(tokens.begin() + static_cast<long>(marker) + 1,
                    tokens.end());
  } else {
    // Leading if/when: split on "then" (Tokenize keeps it).
    size_t then_pos = tokens.size();
    for (size_t i = 1; i < tokens.size(); ++i) {
      if (tokens[i] == "then") {
        then_pos = i;
        break;
      }
    }
    trigger->assign(tokens.begin() + 1,
                    tokens.begin() + static_cast<long>(
                                         std::min(then_pos, tokens.size())));
    if (then_pos < tokens.size()) {
      action->assign(tokens.begin() + static_cast<long>(then_pos) + 1,
                     tokens.end());
    }
  }
  return true;
}

// Finds all devices mentioned in a clause, in order. "switch" is both a
// verb ("switch on the lamp") and a device noun; treat it as a verb when
// it is immediately followed by on/off and another device noun appears
// later in the clause.
std::vector<DeviceType> DevicesIn(const std::vector<std::string>& clause) {
  const Lexicon& lex = Lexicon::Get();
  std::vector<DeviceType> out;
  for (size_t i = 0; i < clause.size(); ++i) {
    const std::string& word = clause[i];
    DeviceType d;
    if (!RuleParser::ResolveDevice(lex.Canonical(word), &d)) continue;
    if (d == DeviceType::kSwitch && i + 1 < clause.size() &&
        (clause[i + 1] == "on" || clause[i + 1] == "off")) {
      bool other_device_later = false;
      for (size_t j = i + 2; j < clause.size(); ++j) {
        DeviceType other;
        if (RuleParser::ResolveDevice(lex.Canonical(clause[j]), &other) &&
            other != DeviceType::kSwitch) {
          other_device_later = true;
        }
      }
      if (other_device_later) continue;  // verb usage
    }
    if (std::find(out.begin(), out.end(), d) == out.end()) {
      out.push_back(d);
    }
  }
  return out;
}

}  // namespace

bool RuleParser::ResolveDevice(const std::string& noun, DeviceType* out) {
  const Lexicon& lex = Lexicon::Get();
  const auto& table = NounTable();
  const auto it = table.find(lex.Canonical(noun));
  if (it == table.end()) return false;
  *out = it->second;
  return true;
}

bool RuleParser::ResolveState(DeviceType device,
                              const std::vector<std::string>& clause,
                              std::string* out) {
  const auto& domain = GetDeviceTypeInfo(device).states;
  // 1. A literal state word from the domain present in the clause.
  for (const auto& word : clause) {
    for (const auto& state : domain) {
      if (word == state) {
        *out = state;
        return true;
      }
    }
  }
  // 2. Special surface forms.
  for (const auto& word : clause) {
    if (word == "opened" || word == "opens") {
      for (const auto& state : domain) {
        if (state == "open") {
          *out = state;
          return true;
        }
      }
    }
  }
  // 3. Verb-implied states.
  for (const auto& word : clause) {
    const auto it = VerbStates().find(word);
    if (it == VerbStates().end()) continue;
    for (const auto& implied : it->second) {
      for (const auto& state : domain) {
        if (state == implied) {
          *out = state;
          return true;
        }
      }
    }
  }
  // 4. Fall back to the device's active state.
  if (domain.size() >= 2) {
    *out = ActiveState(device);
    return true;
  }
  return false;
}

Result<Rule> RuleParser::Parse(const std::string& description) {
  std::vector<std::string> trigger_clause, action_clause;
  const bool has_trigger =
      SplitClauses(description, &trigger_clause, &action_clause);

  Rule rule;
  // Trigger.
  if (has_trigger) {
    const std::vector<DeviceType> trig_devices = DevicesIn(trigger_clause);
    if (trig_devices.empty()) {
      return Status::InvalidArgument("no trigger device recognized in: " +
                                     description);
    }
    rule.trigger.device = trig_devices.front();
    std::string state;
    if (!ResolveState(rule.trigger.device, trigger_clause, &state)) {
      return Status::InvalidArgument("no trigger state recognized in: " +
                                     description);
    }
    rule.trigger.state = state;
  } else {
    rule.trigger = Trigger{DeviceType::kVoice, "spoken"};
  }

  // Actions: one per recognized actuator in the action clause. The clause
  // is segmented on "and" so each action gets its own state words.
  std::vector<std::vector<std::string>> segments;
  segments.emplace_back();
  for (const auto& word : action_clause) {
    if (word == "and") {
      segments.emplace_back();
    } else {
      segments.back().push_back(word);
    }
  }
  for (const auto& segment : segments) {
    for (DeviceType d : DevicesIn(segment)) {
      if (GetDeviceTypeInfo(d).is_sensor || d == DeviceType::kClock ||
          d == DeviceType::kVoice) {
        continue;  // sensors cannot be actuated
      }
      std::string state;
      if (!ResolveState(d, segment, &state)) continue;
      Action a{d, state};
      bool dup = false;
      for (const auto& existing : rule.actions) {
        if (existing.device == a.device) dup = true;
      }
      if (!dup) rule.actions.push_back(a);
    }
  }
  if (rule.actions.empty()) {
    return Status::InvalidArgument("no action recognized in: " +
                                   description);
  }
  rule.trigger_text = TriggerPhrase(rule.trigger);
  rule.action_text = ActionsPhrase(rule.actions);
  rule.description = description;
  return rule;
}

}  // namespace fexiot
