#include "smarthome/device.h"

#include <array>
#include <cassert>

namespace fexiot {
namespace {

std::vector<DeviceTypeInfo> BuildTable() {
  using DT = DeviceType;
  using EC = EnvChannel;
  using ED = EffectDirection;
  std::vector<DeviceTypeInfo> t(static_cast<size_t>(kNumDeviceTypes));
  auto set = [&](DT type, std::string noun, std::string attr,
                 std::vector<std::string> states, bool sensor, bool numeric,
                 EC sensed, std::optional<EnvEffect> effect) {
    t[static_cast<size_t>(type)] = DeviceTypeInfo{
        type,   std::move(noun), std::move(attr), std::move(states),
        sensor, numeric,         sensed,          std::move(effect)};
  };

  // Actuators. The "active" state is states[1] by convention (states[0] is
  // the initial/default state).
  set(DT::kLight, "light", "switch", {"off", "on"}, false, false, EC::kNone,
      EnvEffect{EC::kIlluminance, ED::kIncrease});
  set(DT::kSwitch, "switch", "switch", {"off", "on"}, false, false,
      EC::kNone, std::nullopt);
  set(DT::kPlug, "plug", "switch", {"off", "on"}, false, false, EC::kNone,
      std::nullopt);
  set(DT::kThermostat, "thermostat", "mode", {"off", "heat"}, false, false,
      EC::kNone, EnvEffect{EC::kTemperature, ED::kIncrease});
  set(DT::kHeater, "heater", "switch", {"off", "on"}, false, false,
      EC::kNone, EnvEffect{EC::kTemperature, ED::kIncrease});
  set(DT::kAirConditioner, "ac", "switch", {"off", "on"}, false, false,
      EC::kNone, EnvEffect{EC::kTemperature, ED::kDecrease});
  set(DT::kFan, "fan", "switch", {"off", "on"}, false, false, EC::kNone,
      EnvEffect{EC::kTemperature, ED::kDecrease});
  set(DT::kCamera, "camera", "switch", {"off", "on"}, false, false,
      EC::kNone, std::nullopt);
  set(DT::kDoorLock, "lock", "lock", {"locked", "unlocked"}, false, false,
      EC::kNone, std::nullopt);
  set(DT::kDoor, "door", "contact", {"closed", "open"}, false, false,
      EC::kNone, std::nullopt);
  set(DT::kWindow, "window", "contact", {"closed", "open"}, false, false,
      EC::kNone, EnvEffect{EC::kTemperature, ED::kDecrease});
  set(DT::kBlind, "blind", "position", {"closed", "open"}, false, false,
      EC::kNone, EnvEffect{EC::kIlluminance, ED::kIncrease});
  set(DT::kWaterValve, "valve", "valve", {"closed", "open"}, false, false,
      EC::kNone, EnvEffect{EC::kWaterFlow, ED::kIncrease});
  set(DT::kSprinkler, "sprinkler", "switch", {"off", "on"}, false, false,
      EC::kNone, EnvEffect{EC::kHumidity, ED::kIncrease});
  set(DT::kAlarm, "alarm", "alarm", {"off", "on"}, false, false, EC::kNone,
      EnvEffect{EC::kSound, ED::kIncrease});
  set(DT::kDoorbell, "doorbell", "ring", {"idle", "ringing"}, false, false,
      EC::kNone, EnvEffect{EC::kSound, ED::kIncrease});
  set(DT::kVacuum, "vacuum", "run", {"stopped", "running"}, false, false,
      EC::kNone, EnvEffect{EC::kSound, ED::kIncrease});
  set(DT::kCoffeeMaker, "coffee", "brew", {"off", "on"}, false, false,
      EC::kNone, std::nullopt);
  // Cooking smoke: the oven can fabricate a smoke-detector condition
  // (condition-bypass vulnerability path).
  set(DT::kOven, "oven", "switch", {"off", "on"}, false, false, EC::kNone,
      EnvEffect{EC::kSmoke, ED::kIncrease});
  set(DT::kTv, "tv", "switch", {"off", "on"}, false, false, EC::kNone,
      EnvEffect{EC::kSound, ED::kIncrease});
  set(DT::kSpeaker, "speaker", "switch", {"off", "on"}, false, false,
      EC::kNone, EnvEffect{EC::kSound, ED::kIncrease});
  set(DT::kGarageDoor, "garage", "door", {"closed", "open"}, false, false,
      EC::kNone, std::nullopt);
  set(DT::kPhone, "notification", "message", {"idle", "sent"}, false, false,
      EC::kNone, std::nullopt);

  // Sensors.
  set(DT::kSmokeDetector, "smoke", "smoke", {"cleared", "detected"}, true,
      false, EC::kSmoke, std::nullopt);
  set(DT::kCoDetector, "co", "co", {"cleared", "detected"}, true, false,
      EC::kSmoke, std::nullopt);
  set(DT::kMotionSensor, "motion", "motion", {"inactive", "active"}, true,
      false, EC::kMotion, std::nullopt);
  set(DT::kContactSensor, "contact", "contact", {"closed", "open"}, true,
      false, EC::kNone, std::nullopt);
  set(DT::kLeakSensor, "leak", "water", {"dry", "wet"}, true, false,
      EC::kWaterFlow, std::nullopt);
  set(DT::kHumiditySensor, "humidity", "humidity", {"low", "high"}, true,
      true, EC::kHumidity, std::nullopt);
  set(DT::kTemperatureSensor, "temperature", "temperature", {"low", "high"},
      true, true, EC::kTemperature, std::nullopt);

  // Pseudo-devices.
  set(DT::kClock, "time", "time", {"sunrise", "sunset"}, true, false,
      EC::kNone, std::nullopt);
  set(DT::kVoice, "voice", "command", {"idle", "spoken"}, true, false,
      EC::kNone, std::nullopt);
  return t;
}

const std::vector<DeviceTypeInfo>& Table() {
  static const std::vector<DeviceTypeInfo> kTable = BuildTable();
  return kTable;
}

}  // namespace

const DeviceTypeInfo& GetDeviceTypeInfo(DeviceType type) {
  const auto idx = static_cast<size_t>(type);
  assert(idx < Table().size());
  return Table()[idx];
}

const std::vector<DeviceType>& AllDeviceTypes() {
  static const std::vector<DeviceType> kAll = [] {
    std::vector<DeviceType> v;
    for (int i = 0; i < kNumDeviceTypes; ++i) {
      v.push_back(static_cast<DeviceType>(i));
    }
    return v;
  }();
  return kAll;
}

const std::vector<DeviceType>& ActuatorTypes() {
  static const std::vector<DeviceType> kActuators = [] {
    std::vector<DeviceType> v;
    for (DeviceType t : AllDeviceTypes()) {
      const auto& info = GetDeviceTypeInfo(t);
      if (!info.is_sensor) v.push_back(t);
    }
    return v;
  }();
  return kActuators;
}

const std::vector<DeviceType>& TriggerableTypes() {
  static const std::vector<DeviceType> kTriggerable = [] {
    std::vector<DeviceType> v;
    for (DeviceType t : AllDeviceTypes()) {
      // Any device state change can act as a trigger; include everything.
      v.push_back(t);
    }
    return v;
  }();
  return kTriggerable;
}

const std::string& DeviceNoun(DeviceType type) {
  return GetDeviceTypeInfo(type).noun;
}

const std::string& ActiveState(DeviceType type) {
  const auto& info = GetDeviceTypeInfo(type);
  assert(info.states.size() >= 2);
  return info.states[1];
}

std::string OppositeState(DeviceType type, const std::string& state) {
  const auto& states = GetDeviceTypeInfo(type).states;
  if (states.size() != 2) return state;
  if (state == states[0]) return states[1];
  if (state == states[1]) return states[0];
  return state;
}

bool IsValidState(DeviceType type, const std::string& state) {
  const auto& states = GetDeviceTypeInfo(type).states;
  for (const auto& s : states) {
    if (s == state) return true;
  }
  return false;
}

}  // namespace fexiot
