#include "smarthome/platform.h"

#include <cassert>
#include <cctype>
#include <cmath>

namespace fexiot {
namespace {

// Platform device-vocabulary bias. Values are relative sampling weights;
// 0 disables the device on that platform. Indexed [platform][device].
double PlatformDeviceWeight(Platform p, DeviceType d) {
  const auto& info = GetDeviceTypeInfo(d);
  // Pseudo devices are handled by the trigger sampler directly.
  if (d == DeviceType::kVoice) return 0.0;
  double w = 1.0;
  switch (p) {
    case Platform::kSmartThings:
      // Hub-centric: rich sensor + security automation.
      if (d == DeviceType::kDoorLock || d == DeviceType::kAlarm ||
          d == DeviceType::kWaterValve || d == DeviceType::kSmokeDetector ||
          d == DeviceType::kLeakSensor || d == DeviceType::kContactSensor) {
        w = 3.0;
      }
      break;
    case Platform::kHomeAssistant:
      // Power users: climate and blinds blueprints.
      if (d == DeviceType::kThermostat || d == DeviceType::kHeater ||
          d == DeviceType::kAirConditioner || d == DeviceType::kFan ||
          d == DeviceType::kBlind || d == DeviceType::kWindow ||
          d == DeviceType::kTemperatureSensor ||
          d == DeviceType::kHumiditySensor) {
        w = 3.0;
      }
      break;
    case Platform::kIfttt:
      // Broad consumer integrations: lights, notifications, media.
      if (d == DeviceType::kLight || d == DeviceType::kPhone ||
          d == DeviceType::kCamera || d == DeviceType::kTv ||
          d == DeviceType::kSpeaker || d == DeviceType::kPlug) {
        w = 3.0;
      }
      break;
    case Platform::kGoogleAssistant:
      if (d == DeviceType::kLight || d == DeviceType::kSpeaker ||
          d == DeviceType::kTv || d == DeviceType::kThermostat) {
        w = 3.0;
      }
      if (info.is_sensor) w *= 0.3;  // voice platforms rarely expose sensors
      break;
    case Platform::kAlexa:
      if (d == DeviceType::kLight || d == DeviceType::kPlug ||
          d == DeviceType::kSpeaker || d == DeviceType::kDoorLock ||
          d == DeviceType::kCamera) {
        w = 3.0;
      }
      if (info.is_sensor) w *= 0.3;
      break;
    case Platform::kNumPlatforms:
      break;
  }
  return w;
}

bool IsVoicePlatform(Platform p) {
  return p == Platform::kGoogleAssistant || p == Platform::kAlexa;
}

}  // namespace

std::vector<Trigger> PossibleTriggers(DeviceType device) {
  std::vector<Trigger> out;
  const auto& info = GetDeviceTypeInfo(device);
  for (const auto& st : info.states) out.push_back(Trigger{device, st});
  return out;
}

RuleGenerator::RuleGenerator(Platform platform, Rng* rng)
    : platform_(platform), rng_(rng) {
  for (DeviceType d : ActuatorTypes()) {
    actuator_weights_.push_back(PlatformDeviceWeight(platform, d));
  }
  for (DeviceType d : AllDeviceTypes()) {
    double w = PlatformDeviceWeight(platform, d);
    const auto& info = GetDeviceTypeInfo(d);
    // Sensors and clock are the most natural triggers.
    if (info.is_sensor) w *= 2.5;
    if (d == DeviceType::kClock) w = 1.5;
    trigger_weights_.push_back(w);
  }
}

void RuleGenerator::ApplyDeviceProfile(uint64_t profile_seed,
                                       double strength) {
  Rng profile(profile_seed);
  const auto& acts = ActuatorTypes();
  const auto& all = AllDeviceTypes();
  // One multiplier per device type, applied to both samplers.
  std::vector<double> mult(static_cast<size_t>(kNumDeviceTypes), 1.0);
  for (auto& m : mult) m = std::exp(strength * profile.Normal());
  for (size_t i = 0; i < acts.size(); ++i) {
    actuator_weights_[i] *= mult[static_cast<size_t>(acts[i])];
  }
  for (size_t i = 0; i < all.size(); ++i) {
    trigger_weights_[i] *= mult[static_cast<size_t>(all[i])];
  }
}

Trigger RuleGenerator::SampleTrigger() {
  if (IsVoicePlatform(platform_)) {
    return Trigger{DeviceType::kVoice, "spoken"};
  }
  const auto& all = AllDeviceTypes();
  for (;;) {
    const size_t idx = rng_->Categorical(trigger_weights_);
    const DeviceType d = all[idx];
    if (d == DeviceType::kVoice) continue;
    const auto& info = GetDeviceTypeInfo(d);
    if (info.states.empty()) continue;
    // Bias towards the "active"/event state (smoke detected, motion
    // active); occasionally trigger on the reset state too.
    const std::string& state = rng_->Bernoulli(0.8) && info.states.size() >= 2
                                   ? info.states[1]
                                   : info.states[0];
    return Trigger{d, state};
  }
}

DeviceType RuleGenerator::SampleActuator() {
  const auto& acts = ActuatorTypes();
  const size_t idx = rng_->Categorical(actuator_weights_);
  return acts[idx];
}

std::vector<Action> RuleGenerator::SampleActions(int max_actions) {
  const int n = 1 + static_cast<int>(rng_->UniformInt(
                        static_cast<uint64_t>(max_actions)));
  std::vector<Action> out;
  for (int i = 0; i < n; ++i) {
    const DeviceType d = SampleActuator();
    const auto& info = GetDeviceTypeInfo(d);
    const std::string& state = rng_->Bernoulli(0.7) && info.states.size() >= 2
                                   ? info.states[1]
                                   : info.states[0];
    Action a{d, state};
    // Avoid duplicate device actions inside one rule.
    bool dup = false;
    for (const auto& existing : out) {
      if (existing.device == a.device) dup = true;
    }
    if (!dup) out.push_back(a);
  }
  return out;
}

Rule RuleGenerator::Generate() {
  Rule rule;
  rule.id = next_id_++;
  rule.platform = platform_;
  rule.trigger = SampleTrigger();
  rule.actions = SampleActions(/*max_actions=*/2);
  Render(&rule);
  return rule;
}

std::vector<Rule> RuleGenerator::Generate(int count) {
  std::vector<Rule> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(Generate());
  return out;
}

Rule RuleGenerator::GenerateTriggeredBy(const Action& cause) {
  Rule rule;
  rule.id = next_id_++;
  rule.platform = platform_;

  // Choose a trigger that `cause` fires: either the direct device-state
  // trigger, or a sensor trigger on the affected environment channel.
  std::vector<Trigger> candidates;
  candidates.push_back(Trigger{cause.device, cause.state});
  const auto& info = GetDeviceTypeInfo(cause.device);
  if (info.active_effect.has_value() &&
      cause.state == ActiveState(cause.device)) {
    for (DeviceType d : AllDeviceTypes()) {
      const auto& sensor = GetDeviceTypeInfo(d);
      if (sensor.sensed_channel != info.active_effect->channel) continue;
      for (const Trigger& t : PossibleTriggers(d)) {
        if (ActionCausesTrigger(cause, t)) candidates.push_back(t);
      }
    }
  }
  rule.trigger =
      candidates[static_cast<size_t>(rng_->UniformInt(candidates.size()))];
  rule.actions = SampleActions(/*max_actions=*/2);
  Render(&rule);
  return rule;
}

Rule RuleGenerator::Materialize(const Trigger& trigger,
                                std::vector<Action> actions) {
  Rule rule;
  rule.id = next_id_++;
  rule.platform = platform_;
  rule.trigger = trigger;
  rule.actions = std::move(actions);
  Render(&rule);
  return rule;
}

void RuleGenerator::Render(Rule* rule) const {
  rule->trigger_text = TriggerPhrase(rule->trigger);
  rule->action_text = ActionsPhrase(rule->actions);
  rule->description = RenderRuleDescription(*rule);
}

std::string RenderRuleDescription(const Rule& rule) {
  const std::string trig = TriggerPhrase(rule.trigger);
  const std::string act = ActionsPhrase(rule.actions);
  switch (rule.platform) {
    case Platform::kSmartThings: {
      // SmartThings apps: "<Action> if <trigger>."
      std::string s = act + " if " + trig;
      if (!s.empty()) s[0] = static_cast<char>(std::toupper(s[0]));
      return s;
    }
    case Platform::kHomeAssistant:
      // Blueprint style: "when <trigger> then <action>"
      return "when " + trig + " then " + act;
    case Platform::kIfttt:
      // Applet style: "If <trigger>, then <action>"
      return "If " + trig + ", then " + act;
    case Platform::kGoogleAssistant:
      // Terse service command.
      return "ok google, " + act;
    case Platform::kAlexa:
      return "alexa, " + act;
    case Platform::kNumPlatforms:
      break;
  }
  return act;
}

}  // namespace fexiot
