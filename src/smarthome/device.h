#pragma once

#include <optional>
#include <string>
#include <vector>

namespace fexiot {

/// \brief Smart-home device and sensor types modeled by the simulator.
///
/// Includes two pseudo-devices: kClock (time triggers such as "at sunset")
/// and kVoice (voice-assistant commands), which let Google Assistant /
/// Alexa rules participate in the same trigger-action formalism.
enum class DeviceType {
  kLight = 0,
  kSwitch,
  kPlug,
  kThermostat,
  kHeater,
  kAirConditioner,
  kFan,
  kCamera,
  kDoorLock,
  kDoor,
  kWindow,
  kBlind,
  kWaterValve,
  kSprinkler,
  kAlarm,
  kSmokeDetector,
  kCoDetector,
  kMotionSensor,
  kContactSensor,
  kLeakSensor,
  kHumiditySensor,
  kTemperatureSensor,
  kDoorbell,
  kVacuum,
  kCoffeeMaker,
  kOven,
  kTv,
  kSpeaker,
  kGarageDoor,
  kPhone,
  kClock,
  kVoice,
  kNumDeviceTypes,
};

constexpr int kNumDeviceTypes = static_cast<int>(DeviceType::kNumDeviceTypes);

/// \brief Physical/environmental channels that mediate implicit
/// interactions (a heater raises temperature, which a temperature sensor
/// triggers on).
enum class EnvChannel {
  kNone = 0,
  kTemperature,
  kHumidity,
  kIlluminance,
  kSound,
  kSmoke,
  kMotion,
  kWaterFlow,
};

/// \brief Direction of a device's effect on an environment channel.
enum class EffectDirection { kIncrease, kDecrease };

/// \brief A device's effect on an environment channel.
struct EnvEffect {
  EnvChannel channel = EnvChannel::kNone;
  EffectDirection direction = EffectDirection::kIncrease;
};

/// \brief Static metadata for one device type.
struct DeviceTypeInfo {
  DeviceType type;
  /// Canonical noun used in rendered rule text; matches the NLP lexicon.
  std::string noun;
  /// Primary attribute name ("switch", "lock", "contact", ...).
  std::string attribute;
  /// Possible attribute states (first is the default/initial state).
  std::vector<std::string> states;
  /// True for passive sensors (triggers only, no actuation commands).
  bool is_sensor = false;
  /// True if the sensor reports numeric readings (temperature, humidity).
  bool is_numeric = false;
  /// Channel the sensor observes (kNone for actuators).
  EnvChannel sensed_channel = EnvChannel::kNone;
  /// Environmental effect produced when the device is in its active state.
  std::optional<EnvEffect> active_effect;
};

/// \brief Returns metadata for a device type.
const DeviceTypeInfo& GetDeviceTypeInfo(DeviceType type);

/// \brief All device types (excluding the pseudo count sentinel).
const std::vector<DeviceType>& AllDeviceTypes();

/// \brief Actuator types only (targets of rule actions).
const std::vector<DeviceType>& ActuatorTypes();

/// \brief Sensor/pseudo types usable as rule triggers.
const std::vector<DeviceType>& TriggerableTypes();

/// \brief Canonical noun, e.g. "light" for kLight.
const std::string& DeviceNoun(DeviceType type);

/// \brief The "active" state of the device (e.g. "on", "open", "detected").
const std::string& ActiveState(DeviceType type);

/// \brief The opposite state of \p state within the device's domain, or
/// \p state itself if the domain is not binary.
std::string OppositeState(DeviceType type, const std::string& state);

/// \brief True if \p state is in the device's state domain.
bool IsValidState(DeviceType type, const std::string& state);

/// \brief One deployed device instance in a home.
struct Device {
  int id = 0;
  DeviceType type = DeviceType::kLight;
  std::string room;
  /// Display name, e.g. "kitchen light".
  std::string name;
};

}  // namespace fexiot
