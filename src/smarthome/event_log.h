#pragma once

#include <optional>
#include <string>
#include <vector>

#include "smarthome/device.h"

namespace fexiot {

/// \brief Kind of a raw event-log record.
enum class LogKind {
  kStateChange = 0,  ///< device attribute changed (Figure 1b style entries)
  kCommand,          ///< an app issued a command to a device
  kSensorReading,    ///< periodic numeric sensor report (noise)
  kExecutionError,   ///< command failed; state unchanged (noise)
};

const char* LogKindName(LogKind kind);

/// \brief One record of a smart-home event log.
struct LogEntry {
  double timestamp = 0.0;  ///< seconds since simulation start
  int device_id = 0;
  DeviceType device = DeviceType::kLight;
  std::string attribute;
  /// Logical value ("on", "open", ...) for state changes/commands.
  std::string value;
  /// Raw numeric reading for kSensorReading records.
  std::optional<double> numeric_value;
  LogKind kind = LogKind::kStateChange;
  /// Rule that caused this entry (-1 for exogenous events).
  int source_rule_id = -1;

  /// Renders "12:30:01 kitchen light switch on" style text.
  std::string ToString() const;
};

/// \brief An ordered event log plus cleaning utilities (Section III-A2).
class EventLog {
 public:
  EventLog() = default;
  explicit EventLog(std::vector<LogEntry> entries)
      : entries_(std::move(entries)) {}

  void Append(LogEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<LogEntry>& entries() const { return entries_; }
  std::vector<LogEntry>& mutable_entries() { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// \brief Cleans the log per the paper: drops repetitive sensor readings
  /// and execution errors that do not change device state, and converts
  /// numeric readings into logical values ("low"/"high") with Jenks natural
  /// breaks computed per numeric device. Returns the cleaned log; the
  /// original is untouched.
  EventLog Cleaned() const;

  /// \brief Sorts entries by timestamp (stable).
  void SortByTime();

 private:
  std::vector<LogEntry> entries_;
};

}  // namespace fexiot
