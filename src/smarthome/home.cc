#include "smarthome/home.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

namespace fexiot {
namespace {

const std::vector<std::string>& Rooms() {
  static const std::vector<std::string> kRooms = {
      "kitchen", "bedroom", "bathroom", "living", "hallway", "garage"};
  return kRooms;
}

}  // namespace

int Home::DeviceIdFor(DeviceType type) const {
  for (const auto& d : devices) {
    if (d.type == type) return d.id;
  }
  return -1;
}

const Device* Home::DeviceById(int id) const {
  for (const auto& d : devices) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

Home BuildRandomHome(int num_rules, const std::vector<Platform>& platforms,
                     Rng* rng) {
  assert(!platforms.empty());
  Home home;
  std::vector<RuleGenerator> generators;
  generators.reserve(platforms.size());
  for (Platform p : platforms) generators.emplace_back(p, rng);

  int next_rule_id = 1;
  for (int i = 0; i < num_rules; ++i) {
    auto& gen = generators[rng->UniformInt(generators.size())];
    Rule rule = gen.Generate();
    rule.id = next_rule_id++;
    home.rules.push_back(std::move(rule));
  }

  // Instantiate one device per referenced type.
  std::set<DeviceType> used;
  for (const auto& rule : home.rules) {
    used.insert(rule.trigger.device);
    for (const auto& a : rule.actions) used.insert(a.device);
  }
  int next_device_id = 1;
  for (DeviceType t : used) {
    Device d;
    d.id = next_device_id++;
    d.type = t;
    d.room = Rooms()[rng->UniformInt(Rooms().size())];
    d.name = d.room + " " + DeviceNoun(t);
    home.devices.push_back(std::move(d));
  }
  return home;
}

Home BuildChainedHome(int num_rules,
                      const std::vector<Platform>& platforms, Rng* rng) {
  assert(!platforms.empty());
  Home home;
  std::vector<RuleGenerator> generators;
  generators.reserve(platforms.size());
  for (Platform p : platforms) generators.emplace_back(p, rng);
  auto pick_gen = [&]() -> RuleGenerator& {
    return generators[rng->UniformInt(generators.size())];
  };

  // Exogenous-capable seed triggers (the events the simulator emits).
  static const Trigger kSeeds[] = {
      {DeviceType::kMotionSensor, "active"},
      {DeviceType::kDoor, "open"},
      {DeviceType::kContactSensor, "open"},
      {DeviceType::kDoorbell, "ringing"},
      {DeviceType::kClock, "sunset"},
      {DeviceType::kSmokeDetector, "detected"},
      {DeviceType::kLeakSensor, "wet"},
      {DeviceType::kVoice, "spoken"},
  };
  int next_rule_id = 1;
  const int num_seeds = std::max(2, num_rules / 3);
  for (int i = 0; i < num_rules; ++i) {
    Rule rule;
    if (i < num_seeds || home.rules.empty()) {
      RuleGenerator& gen = pick_gen();
      rule = gen.Generate();
      rule.trigger = kSeeds[rng->UniformInt(8)];
      rule.trigger_text = TriggerPhrase(rule.trigger);
      rule.description = RenderRuleDescription(rule);
    } else {
      // Chain off a random earlier rule's action.
      const Rule& parent =
          home.rules[rng->UniformInt(home.rules.size())];
      const Action& cause =
          parent.actions[rng->UniformInt(parent.actions.size())];
      rule = pick_gen().GenerateTriggeredBy(cause);
    }
    rule.id = next_rule_id++;
    home.rules.push_back(std::move(rule));
  }

  std::set<DeviceType> used;
  for (const auto& rule : home.rules) {
    used.insert(rule.trigger.device);
    for (const auto& a : rule.actions) used.insert(a.device);
  }
  int next_device_id = 1;
  for (DeviceType t : used) {
    Device d;
    d.id = next_device_id++;
    d.type = t;
    d.room = Rooms()[rng->UniformInt(Rooms().size())];
    d.name = d.room + " " + DeviceNoun(t);
    home.devices.push_back(std::move(d));
  }
  return home;
}

HomeSimulator::HomeSimulator(const Home& home, SimulationConfig config,
                             Rng* rng)
    : home_(home), config_(config), rng_(rng) {
  for (const auto& d : home_.devices) {
    state_[d.id] = GetDeviceTypeInfo(d.type).states.front();
  }
}

double HomeSimulator::NumericReadingFor(DeviceType type) {
  // Baseline plus environment-channel contribution plus measurement noise.
  const auto& info = GetDeviceTypeInfo(type);
  double base = type == DeviceType::kTemperatureSensor ? 21.0 : 40.0;
  const double channel = channel_level_[info.sensed_channel];
  return base + 8.0 * channel + rng_->Normal(0.0, 0.8);
}

void HomeSimulator::EmitExogenousEvent(double time) {
  // The outside world: motion, doors, doorbell, smoke (rare), leaks (rare),
  // voice commands, time-of-day events are handled in Run().
  struct Choice {
    DeviceType device;
    const char* state;
    double weight;
  };
  static const Choice kChoices[] = {
      {DeviceType::kMotionSensor, "active", 5.0},
      {DeviceType::kMotionSensor, "inactive", 3.0},
      {DeviceType::kDoor, "open", 2.0},
      {DeviceType::kDoor, "closed", 2.0},
      {DeviceType::kDoorbell, "ringing", 1.0},
      {DeviceType::kContactSensor, "open", 1.5},
      {DeviceType::kContactSensor, "closed", 1.5},
      {DeviceType::kVoice, "spoken", 2.0},
      {DeviceType::kSmokeDetector, "detected", 0.25},
      {DeviceType::kLeakSensor, "wet", 0.25},
  };
  std::vector<double> weights;
  std::vector<const Choice*> avail;
  for (const auto& c : kChoices) {
    if (home_.DeviceIdFor(c.device) < 0 && c.device != DeviceType::kVoice) {
      continue;
    }
    avail.push_back(&c);
    weights.push_back(c.weight);
  }
  if (avail.empty()) return;
  const Choice& pick = *avail[rng_->Categorical(weights)];
  ApplyStateChange(time, pick.device, pick.state, /*source_rule_id=*/-1,
                   /*depth=*/0);
}

void HomeSimulator::ApplyStateChange(double time, DeviceType type,
                                     const std::string& state,
                                     int source_rule_id, int depth) {
  const int device_id = home_.DeviceIdFor(type);
  if (device_id >= 0) {
    if (state_[device_id] == state && type != DeviceType::kVoice) {
      return;  // no change, no log
    }
    state_[device_id] = state;
    LogEntry e;
    e.timestamp = time;
    e.device_id = device_id;
    e.device = type;
    e.attribute = GetDeviceTypeInfo(type).attribute;
    e.value = state;
    e.kind = LogKind::kStateChange;
    e.source_rule_id = source_rule_id;
    log_.Append(std::move(e));

    // Environment side-effects.
    const auto& info = GetDeviceTypeInfo(type);
    if (info.active_effect.has_value()) {
      const double delta =
          info.active_effect->direction == EffectDirection::kIncrease ? 1.0
                                                                      : -1.0;
      if (state == ActiveState(type)) {
        channel_level_[info.active_effect->channel] += delta;
      } else {
        channel_level_[info.active_effect->channel] -= delta;
      }
    }
  }
  FireMatchingRules(time, Trigger{type, state}, depth);
}

void HomeSimulator::FireMatchingRules(double time, const Trigger& event,
                                      int depth) {
  if (depth >= config_.max_cascade_depth) return;
  for (const auto& rule : home_.rules) {
    const bool direct = rule.trigger == event;
    // Environment-mediated firing: an actuator state change drives the
    // sensor the rule listens on (heater on -> temperature high).
    bool via_channel = false;
    if (!direct) {
      via_channel =
          ActionCausesTrigger(Action{event.device, event.state}, rule.trigger);
    }
    if (!direct && !via_channel) continue;
    const double when = time + config_.action_latency;
    if (via_channel) {
      // Log the sensor flipping state before the dependent rule runs.
      const int sensor_id = home_.DeviceIdFor(rule.trigger.device);
      if (sensor_id >= 0 && state_[sensor_id] != rule.trigger.state) {
        state_[sensor_id] = rule.trigger.state;
        LogEntry e;
        e.timestamp = when;
        e.device_id = sensor_id;
        e.device = rule.trigger.device;
        e.attribute = GetDeviceTypeInfo(rule.trigger.device).attribute;
        e.value = rule.trigger.state;
        e.kind = LogKind::kStateChange;
        e.source_rule_id = -1;
        log_.Append(std::move(e));
      }
    }
    for (const auto& action : rule.actions) {
      ExecuteAction(PendingAction{when, action, rule.id, depth + 1});
    }
  }
}

void HomeSimulator::ExecuteAction(const PendingAction& pending) {
  // Command record.
  const int device_id = home_.DeviceIdFor(pending.action.device);
  LogEntry cmd;
  cmd.timestamp = pending.time;
  cmd.device_id = device_id;
  cmd.device = pending.action.device;
  cmd.attribute = GetDeviceTypeInfo(pending.action.device).attribute;
  cmd.value = pending.action.state;
  cmd.kind = LogKind::kCommand;
  cmd.source_rule_id = pending.source_rule_id;
  log_.Append(cmd);

  if (rng_->Bernoulli(config_.execution_error_rate)) {
    LogEntry err = cmd;
    err.kind = LogKind::kExecutionError;
    err.timestamp = pending.time + 0.1;
    log_.Append(std::move(err));
    return;  // device state unchanged
  }
  ApplyStateChange(pending.time + 0.2, pending.action.device,
                   pending.action.state, pending.source_rule_id,
                   pending.depth);
}

EventLog HomeSimulator::Run() {
  log_ = EventLog();
  double t = 0.0;
  double next_report = config_.sensor_report_period;

  // Sunrise / sunset markers (6h and 18h into each simulated day).
  std::vector<std::pair<double, const char*>> clock_events;
  for (double day = 0.0; day < config_.duration_seconds; day += 86400.0) {
    clock_events.push_back({day + 6 * 3600.0, "sunrise"});
    clock_events.push_back({day + 18 * 3600.0, "sunset"});
  }
  size_t clock_idx = 0;

  while (t < config_.duration_seconds) {
    // Exponential gap to the next exogenous event.
    const double gap =
        -config_.exogenous_mean_gap * std::log(1.0 - rng_->Uniform() + 1e-12);
    t += std::max(1.0, gap);
    if (t >= config_.duration_seconds) break;

    // Interleave clock events and periodic sensor reports that happen first.
    while (clock_idx < clock_events.size() &&
           clock_events[clock_idx].first <= t) {
      ApplyStateChange(clock_events[clock_idx].first, DeviceType::kClock,
                       clock_events[clock_idx].second, -1, 0);
      ++clock_idx;
    }
    while (config_.sensor_report_period > 0.0 && next_report <= t) {
      for (const auto& d : home_.devices) {
        const auto& info = GetDeviceTypeInfo(d.type);
        if (!info.is_numeric) continue;
        LogEntry e;
        e.timestamp = next_report;
        e.device_id = d.id;
        e.device = d.type;
        e.attribute = info.attribute;
        e.numeric_value = NumericReadingFor(d.type);
        e.kind = LogKind::kSensorReading;
        log_.Append(std::move(e));
      }
      next_report += config_.sensor_report_period;
    }

    EmitExogenousEvent(t);
  }
  log_.SortByTime();
  return std::move(log_);
}

}  // namespace fexiot
