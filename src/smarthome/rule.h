#pragma once

#include <string>
#include <vector>

#include "smarthome/device.h"

namespace fexiot {

/// \brief IoT automation platforms evaluated in the paper (Section IV-A).
enum class Platform {
  kSmartThings = 0,
  kHomeAssistant,
  kIfttt,
  kGoogleAssistant,
  kAlexa,
  kNumPlatforms,
};

constexpr int kNumPlatforms = static_cast<int>(Platform::kNumPlatforms);

const char* PlatformName(Platform p);

/// \brief Rule trigger: fires when \p device's primary attribute becomes
/// \p state.
struct Trigger {
  DeviceType device = DeviceType::kMotionSensor;
  std::string state;

  bool operator==(const Trigger& other) const {
    return device == other.device && state == other.state;
  }
};

/// \brief Rule action: sets \p device's primary attribute to \p state.
struct Action {
  DeviceType device = DeviceType::kLight;
  std::string state;

  bool operator==(const Action& other) const {
    return device == other.device && state == other.state;
  }
};

/// \brief One trigger-action automation rule (a node of the interaction
/// graph, Definition 1).
struct Rule {
  int id = 0;
  Platform platform = Platform::kSmartThings;
  Trigger trigger;
  std::vector<Action> actions;
  /// Rendered natural-language description (what a crawler would scrape).
  std::string description;
  /// Trigger-only / action-only phrases (used for Eq. 1 pair embeddings).
  std::string trigger_text;
  std::string action_text;
};

/// \brief English phrase for a trigger, e.g. "smoke is detected",
/// "the door is opened", "motion is detected", "it is sunset".
std::string TriggerPhrase(const Trigger& trigger);

/// \brief English phrase for an action, e.g. "turn on the light",
/// "lock the door", "open the valve".
std::string ActionPhrase(const Action& action);

/// \brief English phrase for a list of actions joined with "and".
std::string ActionsPhrase(const std::vector<Action>& actions);

/// \brief Ground-truth "action-trigger" correlation: does executing any
/// action of \p a cause (directly or through an environment channel) the
/// trigger of \p b to fire? This is the label the Figure 3 correlation
/// classifiers learn to predict from text features.
bool ActionTriggersRule(const Rule& a, const Rule& b);

/// \brief True if action \p act causes trigger \p trig (direct device-state
/// match or matching environment-channel effect).
bool ActionCausesTrigger(const Action& act, const Trigger& trig);

}  // namespace fexiot
