#include "smarthome/event_log.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "nlp/jenks.h"

namespace fexiot {

const char* LogKindName(LogKind kind) {
  switch (kind) {
    case LogKind::kStateChange:
      return "state";
    case LogKind::kCommand:
      return "command";
    case LogKind::kSensorReading:
      return "reading";
    case LogKind::kExecutionError:
      return "error";
  }
  return "?";
}

std::string LogEntry::ToString() const {
  const int total = static_cast<int>(timestamp);
  const int h = (total / 3600) % 24;
  const int m = (total / 60) % 60;
  const int s = total % 60;
  char buf[160];
  if (numeric_value.has_value()) {
    std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d dev%-3d %-12s %s=%.1f [%s]",
                  h, m, s, device_id, DeviceNoun(device).c_str(),
                  attribute.c_str(), *numeric_value, LogKindName(kind));
  } else {
    std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d dev%-3d %-12s %s=%s [%s]",
                  h, m, s, device_id, DeviceNoun(device).c_str(),
                  attribute.c_str(), value.c_str(), LogKindName(kind));
  }
  return buf;
}

void EventLog::SortByTime() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const LogEntry& a, const LogEntry& b) {
                     return a.timestamp < b.timestamp;
                   });
}

EventLog EventLog::Cleaned() const {
  // Pass 1: collect numeric readings per device to fit Jenks breaks.
  std::map<int, std::vector<double>> numeric_by_device;
  for (const auto& e : entries_) {
    if (e.kind == LogKind::kSensorReading && e.numeric_value.has_value()) {
      numeric_by_device[e.device_id].push_back(*e.numeric_value);
    }
  }
  std::map<int, std::vector<double>> breaks_by_device;
  for (auto& [id, values] : numeric_by_device) {
    if (values.size() >= 4) {
      breaks_by_device[id] = JenksBreaks::Compute(values, /*num_classes=*/2);
    }
  }

  // Pass 2: rewrite entries.
  EventLog out;
  std::map<int, std::string> last_value;  // per device, last logical value
  for (const auto& e : entries_) {
    if (e.kind == LogKind::kExecutionError) continue;  // noise
    LogEntry rewritten = e;
    if (e.kind == LogKind::kSensorReading) {
      if (!e.numeric_value.has_value()) continue;
      auto it = breaks_by_device.find(e.device_id);
      if (it == breaks_by_device.end()) continue;
      const int cls = JenksBreaks::Classify(*e.numeric_value, it->second);
      rewritten.value = JenksBreaks::ClassLabel(cls, 2);
      rewritten.numeric_value.reset();
      rewritten.kind = LogKind::kStateChange;
    }
    // Drop repetitive readings: consecutive identical logical values for
    // the same device do not change state. Only state changes participate
    // in the dedup — a command for a value must not swallow the state
    // change that realizes it.
    if (rewritten.kind == LogKind::kStateChange) {
      auto last = last_value.find(rewritten.device_id);
      if (last != last_value.end() && last->second == rewritten.value) {
        continue;
      }
      last_value[rewritten.device_id] = rewritten.value;
    }
    out.Append(std::move(rewritten));
  }
  return out;
}

}  // namespace fexiot
