#pragma once

#include <map>
#include <vector>

#include "common/rng.h"
#include "smarthome/event_log.h"
#include "smarthome/platform.h"
#include "smarthome/rule.h"

namespace fexiot {

/// \brief One smart home: deployed devices plus automation rules drawn from
/// possibly several platforms (the paper: 62.4% of users deploy more than
/// one platform).
struct Home {
  std::vector<Device> devices;
  std::vector<Rule> rules;

  /// Device id for a type (devices are unique per type in a home);
  /// -1 if the home has no such device.
  int DeviceIdFor(DeviceType type) const;
  const Device* DeviceById(int id) const;
};

/// \brief Samples a home with \p num_rules rules spread over \p platforms.
/// A device instance is created for every device type any rule references.
Home BuildRandomHome(int num_rules, const std::vector<Platform>& platforms,
                     Rng* rng);

/// \brief Samples a home whose rules form reachable chains: the first few
/// rules trigger on exogenous events (motion, doors, clock, safety
/// sensors) and later rules chain off earlier rules' actions, so the
/// simulator actually exercises multi-hop interactions (used for the
/// Table II testbed).
Home BuildChainedHome(int num_rules, const std::vector<Platform>& platforms,
                      Rng* rng);

/// \brief Configuration of the discrete-event home simulator.
struct SimulationConfig {
  /// Simulated duration in seconds (default: one day).
  double duration_seconds = 24.0 * 3600.0;
  /// Mean gap between exogenous events (motion, arrivals, voice...).
  double exogenous_mean_gap = 600.0;
  /// Period of noisy periodic sensor reports; 0 disables them.
  double sensor_report_period = 900.0;
  /// Probability that a command execution errors out (logged as noise).
  double execution_error_rate = 0.03;
  /// Latency between a trigger firing and its actions executing.
  double action_latency = 1.0;
  /// Cap on chained rule firings from one exogenous event (loop guard).
  int max_cascade_depth = 12;
};

/// \brief Discrete-event simulator: executes a home's rules over simulated
/// time and emits the raw event log (Figure 1b). Substitutes for the
/// paper's one-week volunteer testbed collection.
class HomeSimulator {
 public:
  HomeSimulator(const Home& home, SimulationConfig config, Rng* rng);

  /// Runs the simulation and returns the raw (uncleaned) log.
  EventLog Run();

 private:
  struct PendingAction {
    double time;
    Action action;
    int source_rule_id;
    int depth;
  };

  void EmitExogenousEvent(double time);
  /// Sets a device's state, logs it, and fires matching rules.
  void ApplyStateChange(double time, DeviceType type, const std::string& state,
                        int source_rule_id, int depth);
  void FireMatchingRules(double time, const Trigger& event, int depth);
  void ExecuteAction(const PendingAction& pending);
  double NumericReadingFor(DeviceType type);

  const Home& home_;
  SimulationConfig config_;
  Rng* rng_;
  EventLog log_;
  std::map<int, std::string> state_;            // device_id -> state
  std::map<EnvChannel, double> channel_level_;  // environment intensities
};

}  // namespace fexiot
