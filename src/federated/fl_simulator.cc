#include "federated/fl_simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "common/logging.h"
#include "ml/kmeans.h"
#include "ml/metrics.h"
#include "runtime/message.h"
#include "tensor/ops.h"

namespace fexiot {

FederatedSimulator::FederatedSimulator(GnnConfig model_config,
                                       FlConfig fl_config)
    : model_config_(model_config),
      fl_config_(fl_config),
      rng_(fl_config.seed),
      pool_(std::make_unique<ThreadPool>(
          static_cast<size_t>(std::max(0, fl_config.threads)))) {}

void FederatedSimulator::SetupClients(
    const GraphDataset& data, const ClientPartition& part,
    const std::vector<GraphDataset>& cluster_tests) {
  clients_.clear();
  client_weight_.clear();
  size_t total = 0;
  for (const auto& shard : part.indices) total += shard.size();
  assert(total > 0);
  for (size_t c = 0; c < part.indices.size(); ++c) {
    std::vector<InteractionGraph> train_graphs;
    for (size_t i : part.indices[c]) train_graphs.push_back(data.graph(i));
    const int cluster =
        part.client_cluster.empty() ? 0 : part.client_cluster[c];
    const GraphDataset& test_pool =
        cluster_tests[static_cast<size_t>(cluster) % cluster_tests.size()];
    clients_.push_back(std::make_unique<FlClient>(
        static_cast<int>(c), model_config_, fl_config_.local,
        PrepareGraphs(train_graphs, model_config_),
        PrepareDataset(test_pool, model_config_), rng_.Fork()));
    client_weight_.push_back(static_cast<double>(part.indices[c].size()) /
                             static_cast<double>(total));
  }
  whole_model_clusters_.clear();
  gradient_sequences_.assign(clients_.size(), {});
  unlocked_layers_ = 1;
  fexiot_partition_.clear();
  agg_scale_.clear();
  codec_of_.clear();
  async_global_.clear();
}

void FederatedSimulator::SetupClients(const GraphDataset& data,
                                      const ClientPartition& part) {
  clients_.clear();
  client_weight_.clear();
  size_t total = 0;
  for (const auto& shard : part.indices) total += shard.size();
  assert(total > 0);

  for (size_t c = 0; c < part.indices.size(); ++c) {
    std::vector<size_t> shard = part.indices[c];
    rng_.Shuffle(&shard);
    const size_t n_train = std::max<size_t>(
        1, static_cast<size_t>(fl_config_.local_train_fraction *
                               static_cast<double>(shard.size())));
    std::vector<InteractionGraph> train_graphs, test_graphs;
    for (size_t i = 0; i < shard.size(); ++i) {
      (i < n_train ? train_graphs : test_graphs)
          .push_back(data.graph(shard[i]));
    }
    if (test_graphs.empty() && train_graphs.size() > 1) {
      test_graphs.push_back(train_graphs.back());
      train_graphs.pop_back();
    }
    clients_.push_back(std::make_unique<FlClient>(
        static_cast<int>(c), model_config_, fl_config_.local,
        PrepareGraphs(train_graphs, model_config_),
        PrepareGraphs(test_graphs, model_config_), rng_.Fork()));
    client_weight_.push_back(static_cast<double>(shard.size()) /
                             static_cast<double>(total));
  }
  whole_model_clusters_.clear();
  gradient_sequences_.assign(clients_.size(), {});
  unlocked_layers_ = 1;
  fexiot_partition_.clear();
  agg_scale_.clear();
  codec_of_.clear();
  async_global_.clear();
}

Matrix FederatedSimulator::SimilarityMatrix(
    const std::vector<std::vector<double>>& v) {
  Matrix m(v.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    m.At(i, i) = 1.0;
    for (size_t j = i + 1; j < v.size(); ++j) {
      const double s = CosineSimilarity(v[i], v[j]);
      m.At(i, j) = s;
      m.At(j, i) = s;
    }
  }
  return m;
}

double FederatedSimulator::AggScale(int c) const {
  const auto it = agg_scale_.find(c);
  return it == agg_scale_.end() ? 1.0 : it->second;
}

WireCodec FederatedSimulator::CodecOf(int c) const {
  return static_cast<size_t>(c) < codec_of_.size()
             ? codec_of_[static_cast<size_t>(c)]
             : WireCodec::kFp64;
}

const std::vector<double>& FederatedSimulator::ThroughWire(
    int c, const std::vector<double>& raw,
    std::vector<double>* scratch) const {
  const WireCodec codec = CodecOf(c);
  if (codec == WireCodec::kFp64) return raw;
  *scratch = raw;
  CodecRoundTrip(codec, scratch);
  return *scratch;
}

void FederatedSimulator::AverageLayer(int layer,
                                      const std::vector<int>& group) {
  if (group.empty()) return;
  double weight_sum = 0.0;
  for (int c : group) {
    weight_sum += client_weight_[static_cast<size_t>(c)] * AggScale(c);
  }
  if (weight_sum <= 0.0) return;
  std::vector<double> avg;
  std::vector<double> scratch;
  for (int c : group) {
    // The server accumulates what arrived over the uplink: the client's
    // weights as seen through its codec (fp64: the weights themselves).
    const std::vector<double> local =
        clients_[static_cast<size_t>(c)]->LayerWeights(layer);
    const std::vector<double>& w = ThroughWire(c, local, &scratch);
    const double wc =
        client_weight_[static_cast<size_t>(c)] * AggScale(c) / weight_sum;
    if (avg.empty()) avg.assign(w.size(), 0.0);
    for (size_t i = 0; i < w.size(); ++i) avg[i] += wc * w[i];
  }
  for (int c : group) {
    // The install crosses the downlink: each member receives the average
    // as encoded with its own codec.
    clients_[static_cast<size_t>(c)]->SetLayerWeights(
        layer, ThroughWire(c, avg, &scratch));
  }
}

void FederatedSimulator::EnsureAsyncGlobal() {
  if (!async_global_.empty()) return;
  const int num_layers = clients_.front()->num_layers();
  async_global_.resize(static_cast<size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    auto& g = async_global_[static_cast<size_t>(l)];
    for (size_t c = 0; c < clients_.size(); ++c) {
      const std::vector<double> w = clients_[c]->LayerWeights(l);
      if (g.empty()) g.assign(w.size(), 0.0);
      for (size_t i = 0; i < w.size(); ++i) g[i] += client_weight_[c] * w[i];
    }
  }
}

void FederatedSimulator::AsyncFedAvgRound(const RoundOutcome& outcome,
                                          double* bytes) {
  const RuntimeConfig& rc = fl_config_.runtime;
  const int num_layers = clients_.front()->num_layers();
  std::vector<double> scratch;
  if (rc.policy == RoundPolicy::kAsync) {
    // Immediate per-update mixing in the runtime's application order.
    for (const UpdateApplication& u : outcome.applied) {
      const double a = StalenessWeight(rc.async_alpha0,
                                       rc.async_staleness_exponent,
                                       u.staleness);
      for (int l = 0; l < num_layers; ++l) {
        const std::vector<double> local =
            clients_[static_cast<size_t>(u.client)]->LayerWeights(l);
        const std::vector<double>& w = ThroughWire(u.client, local, &scratch);
        auto& g = async_global_[static_cast<size_t>(l)];
        for (size_t i = 0; i < g.size(); ++i) {
          g[i] = (1.0 - a) * g[i] + a * w[i];
        }
      }
    }
  } else {
    // Semi-async: each flushed tier is one client-weighted mini-batch;
    // the runtime appends whole tiers, so equal (tier, staleness) runs
    // are consecutive in the application order.
    size_t i = 0;
    while (i < outcome.applied.size()) {
      size_t j = i;
      while (j < outcome.applied.size() &&
             outcome.applied[j].tier == outcome.applied[i].tier &&
             outcome.applied[j].staleness == outcome.applied[i].staleness) {
        ++j;
      }
      double wsum = 0.0;
      for (size_t k = i; k < j; ++k) {
        wsum += client_weight_[static_cast<size_t>(outcome.applied[k].client)];
      }
      const double a = StalenessWeight(rc.async_alpha0,
                                       rc.async_staleness_exponent,
                                       outcome.applied[i].staleness);
      for (int l = 0; l < num_layers; ++l) {
        auto& g = async_global_[static_cast<size_t>(l)];
        std::vector<double> avg(g.size(), 0.0);
        for (size_t k = i; k < j; ++k) {
          const size_t c = static_cast<size_t>(outcome.applied[k].client);
          const std::vector<double> local =
              clients_[c]->LayerWeights(static_cast<int>(l));
          const std::vector<double>& w =
              ThroughWire(static_cast<int>(c), local, &scratch);
          const double wc = client_weight_[c] / wsum;
          for (size_t x = 0; x < w.size(); ++x) avg[x] += wc * w[x];
        }
        for (size_t x = 0; x < g.size(); ++x) {
          g[x] = (1.0 - a) * g[x] + a * avg[x];
        }
      }
      i = j;
    }
  }
  // The delivered clients sync to the new global (the others keep their
  // local replica until they next deliver, as in FedAsync).
  for (int c : outcome.delivered) {
    for (int l = 0; l < num_layers; ++l) {
      clients_[static_cast<size_t>(c)]->SetLayerWeights(
          l, ThroughWire(c, async_global_[static_cast<size_t>(l)], &scratch));
    }
  }
  for (int l = 0; l < num_layers; ++l) {
    *bytes += LayerExchangeBytes(l, outcome.delivered);
  }
}

double FederatedSimulator::LayerExchangeBytes(
    int layer, const std::vector<int>& group) const {
  // Upload + download of the layer's payload lanes for each group member,
  // under the member's codec. The lane bytes exclude the u64 count prefix
  // so the fp64 default prices exactly LayerBytes(layer) per direction —
  // the historical accounting, bit for bit.
  const size_t n = clients_.front()->LayerBytes(layer) / sizeof(double);
  double bytes = 0.0;
  for (int c : group) {
    bytes += 2.0 * static_cast<double>(EncodedPayloadBytes(n, CodecOf(c)) -
                                       sizeof(uint64_t));
  }
  return bytes;
}

std::vector<int> FederatedSimulator::FilterDelivered(
    const std::vector<int>& group, const std::vector<int>& delivered) const {
  std::vector<int> active;
  active.reserve(group.size());
  for (int c : group) {
    if (std::binary_search(delivered.begin(), delivered.end(), c)) {
      active.push_back(c);
    }
  }
  return active;
}

std::vector<int> FederatedSimulator::FexiotLayersThisRound() const {
  const int num_layers = clients_.front()->num_layers();
  const int exchanged = std::min(unlocked_layers_, num_layers);
  std::vector<int> layers;
  // FexiotRound increments the round counter before the lazy-sync check;
  // mirror the post-increment value it will see.
  const int counter = fexiot_round_counter_ + 1;
  for (int l = 0; l < exchanged; ++l) {
    const bool stable =
        static_cast<size_t>(l) < layer_stable_rounds_.size() &&
        layer_stable_rounds_[static_cast<size_t>(l)] >= 3;
    if (stable && counter % 2 == 1) continue;
    layers.push_back(l);
  }
  return layers;
}

std::vector<double> FederatedSimulator::RoundWireBytesPerClient(
    FlAlgorithm algorithm) const {
  std::vector<double> bytes(clients_.size(), 0.0);
  if (algorithm == FlAlgorithm::kLocalOnly) return bytes;
  const FlClient& c0 = *clients_.front();
  std::vector<int> layers;
  if (algorithm == FlAlgorithm::kFexiot) {
    layers = FexiotLayersThisRound();
  } else {
    for (int l = 0; l < c0.num_layers(); ++l) layers.push_back(l);
  }
  // One message per exchanged layer; the encoded size is shared by every
  // client negotiating the same codec.
  double by_codec[kNumWireCodecs] = {};
  for (int k = 0; k < kNumWireCodecs; ++k) {
    for (int l : layers) {
      by_codec[k] += static_cast<double>(MessageWireBytes(
          c0.LayerBytes(l) / sizeof(double), static_cast<WireCodec>(k)));
    }
  }
  for (size_t c = 0; c < clients_.size(); ++c) {
    bytes[c] = by_codec[static_cast<int>(CodecOf(static_cast<int>(c)))];
  }
  return bytes;
}

std::vector<double> FederatedSimulator::ConcatAllLayers(int client) const {
  std::vector<double> out;
  const auto& cl = clients_[static_cast<size_t>(client)];
  for (int l = 0; l < cl->num_layers(); ++l) {
    const std::vector<double> w = cl->LayerWeights(l);
    out.insert(out.end(), w.begin(), w.end());
  }
  return out;
}

std::vector<double> FederatedSimulator::ConcatAllDeltas(int client) const {
  // Server-side view of the client's whole-model delta. Quantization is
  // per tensor, so each layer is round-tripped before the concat.
  std::vector<double> out, scratch;
  const auto& cl = clients_[static_cast<size_t>(client)];
  for (int l = 0; l < cl->num_layers(); ++l) {
    const std::vector<double>& d =
        ThroughWire(client, cl->LayerDelta(l), &scratch);
    out.insert(out.end(), d.begin(), d.end());
  }
  return out;
}

bool FederatedSimulator::FexiotRound(double* bytes,
                                     const std::vector<int>& delivered) {
  const int num_layers = clients_.front()->num_layers();
  if (fexiot_partition_.empty()) {
    std::vector<int> all(clients_.size());
    std::iota(all.begin(), all.end(), 0);
    fexiot_partition_.assign(static_cast<size_t>(num_layers), {all});
    layer_stable_rounds_.assign(static_cast<size_t>(num_layers), 0);
    fexiot_round_counter_ = 0;
  }
  ++fexiot_round_counter_;
  bool split_happened = false;
  for (int l = 0; l < std::min(unlocked_layers_, num_layers); ++l) {
    // Stable layers sync lazily: once a layer's partition has been
    // unchanged for >= 3 rounds, it is exchanged only every other round.
    if (layer_stable_rounds_[static_cast<size_t>(l)] >= 3 &&
        fexiot_round_counter_ % 2 == 1) {
      ++layer_stable_rounds_[static_cast<size_t>(l)];
      continue;
    }
    bool layer_changed = false;
    // Work on a copy: splits replace groups in this and deeper layers.
    const std::vector<std::vector<int>> groups =
        fexiot_partition_[static_cast<size_t>(l)];
    for (const auto& group : groups) {
      // Only clients whose updates the runtime delivered contribute to
      // (and receive) this round's aggregate; absent members keep their
      // local weights and re-sync when they next deliver.
      const std::vector<int> active = FilterDelivered(group, delivered);
      if (active.empty()) continue;
      *bytes += LayerExchangeBytes(l, active);
      AverageLayer(l, active);

      // Gate of Eq. 3 on this layer's deltas within the delivered part of
      // the group. The server observes every clustering signal through the
      // member's uplink codec (fp64: the delta itself).
      double weight_sum = 0.0;
      for (int c : active) {
        weight_sum += client_weight_[static_cast<size_t>(c)];
      }
      std::vector<double> weighted_delta;
      std::vector<double> scratch;
      double max_norm = 0.0;
      std::vector<std::vector<double>> deltas;
      for (int c : active) {
        const std::vector<double>& d = ThroughWire(
            c, clients_[static_cast<size_t>(c)]->LayerDelta(l), &scratch);
        if (weighted_delta.empty()) weighted_delta.assign(d.size(), 0.0);
        const double wc = client_weight_[static_cast<size_t>(c)] / weight_sum;
        for (size_t i = 0; i < d.size(); ++i) weighted_delta[i] += wc * d[i];
        max_norm = std::max(max_norm, VectorNorm(d));
        // Cluster on the stable cross-round drift direction.
        deltas.push_back(CodecRoundTripped(
            CodecOf(c),
            clients_[static_cast<size_t>(c)]->LayerDeltaEma(l)));
      }
      const double mean_norm = VectorNorm(weighted_delta);
      // Splits are deferred until the whole group delivered fresh updates:
      // bisecting on a partial view would assign absent members by stale
      // information (and could duplicate them across halves).
      const bool should_split =
          active.size() == group.size() &&
          static_cast<int>(group.size()) >= fl_config_.min_cluster_size &&
          mean_norm < fl_config_.epsilon1 && max_norm > fl_config_.epsilon2;
      if (std::getenv("FEXIOT_DEBUG_FL") != nullptr) {
        std::fprintf(stderr,
                     "[fexiot-fl] layer=%d group=%zu active=%zu "
                     "mean_norm=%.4f max_norm=%.4f split=%d\n",
                     l, group.size(), active.size(), mean_norm, max_norm,
                     should_split ? 1 : 0);
      }
      if (!should_split) continue;

      // Lines 13-16: bisect by cosine similarity of the layer's local
      // updates. (The pseudocode writes similarity over W^l; all group
      // members share the aggregated W^l, so the informative signal is
      // the local update DeltaW^l, as in Sattler et al.)
      const Matrix sim = SimilarityMatrix(deltas);
      const std::vector<int> split = BinaryClusterSimilarity(sim);
      std::vector<int> g0, g1;
      for (size_t i = 0; i < group.size(); ++i) {
        (split[i] == 0 ? g0 : g1).push_back(group[i]);
      }
      if (g0.empty() || g1.empty()) continue;
      // Split-quality check: only commit the bisection when real cluster
      // structure exists — the mean within-half similarity must clearly
      // exceed the mean cross-half similarity. Label-skew noise alone
      // fails this and the group stays whole.
      double within = 0.0, cross = 0.0;
      int n_within = 0, n_cross = 0;
      for (size_t i = 0; i < group.size(); ++i) {
        for (size_t j = i + 1; j < group.size(); ++j) {
          if (split[i] == split[j]) {
            within += sim.At(i, j);
            ++n_within;
          } else {
            cross += sim.At(i, j);
            ++n_cross;
          }
        }
      }
      if (n_within == 0 || n_cross == 0) continue;
      if (within / n_within - cross / n_cross <
          fl_config_.split_quality_margin) {
        continue;
      }
      split_happened = true;
      layer_changed = true;
      // The split permanently refines this layer and all deeper layers.
      for (int l2 = l; l2 < num_layers; ++l2) {
        auto& part = fexiot_partition_[static_cast<size_t>(l2)];
        std::vector<std::vector<int>> next;
        for (const auto& existing : part) {
          // Intersect the existing group with the two halves.
          std::vector<int> h0, h1;
          for (int c : existing) {
            const bool in0 =
                std::find(g0.begin(), g0.end(), c) != g0.end();
            const bool in1 =
                std::find(g1.begin(), g1.end(), c) != g1.end();
            if (in0) {
              h0.push_back(c);
            } else if (in1) {
              h1.push_back(c);
            } else {
              h0.push_back(c);
              h1.push_back(c);
            }
          }
          // A group untouched by the split stays intact.
          if (h0.size() == existing.size() || h1.size() == existing.size()) {
            next.push_back(existing);
            continue;
          }
          if (!h0.empty()) next.push_back(h0);
          if (!h1.empty()) next.push_back(h1);
        }
        part = std::move(next);
        if (l2 > l) layer_stable_rounds_[static_cast<size_t>(l2)] = 0;
      }
    }
    layer_stable_rounds_[static_cast<size_t>(l)] =
        layer_changed ? 0 : layer_stable_rounds_[static_cast<size_t>(l)] + 1;
  }
  return split_happened;
}

void FederatedSimulator::ClusteredWholeModelRound(
    FlAlgorithm algorithm, double* bytes,
    const std::vector<int>& delivered) {
  if (whole_model_clusters_.empty()) {
    std::vector<int> all(clients_.size());
    std::iota(all.begin(), all.end(), 0);
    whole_model_clusters_.push_back(std::move(all));
  }
  std::vector<std::vector<int>> next_clusters;
  for (const auto& cluster : whole_model_clusters_) {
    const std::vector<int> active = FilterDelivered(cluster, delivered);
    if (active.empty()) {
      next_clusters.push_back(cluster);
      continue;
    }
    // Whole model exchanged by every delivered cluster member.
    for (int l = 0; l < clients_.front()->num_layers(); ++l) {
      *bytes += LayerExchangeBytes(l, active);
      AverageLayer(l, active);
    }
    // Split test (Eq. 3 over whole-model deltas of delivered members).
    double weight_sum = 0.0;
    for (int c : active) weight_sum += client_weight_[static_cast<size_t>(c)];
    std::vector<double> weighted;
    double max_norm = 0.0;
    std::vector<std::vector<double>> sims;
    for (int c : active) {
      std::vector<double> d = ConcatAllDeltas(c);
      max_norm = std::max(max_norm, VectorNorm(d));
      if (weighted.empty()) weighted.assign(d.size(), 0.0);
      const double wc = client_weight_[static_cast<size_t>(c)] / weight_sum;
      for (size_t i = 0; i < d.size(); ++i) weighted[i] += wc * d[i];
      if (algorithm == FlAlgorithm::kGcfl) {
        // GCFL+: similarity over the recent gradient *sequence*.
        auto& seq = gradient_sequences_[static_cast<size_t>(c)];
        seq.push_back(d);
        if (seq.size() > 3) seq.pop_front();
        std::vector<double> concat;
        for (const auto& past : seq) {
          concat.insert(concat.end(), past.begin(), past.end());
        }
        sims.push_back(std::move(concat));
      } else {
        sims.push_back(std::move(d));
      }
    }
    // As in FexiotRound, re-clustering waits for a complete view.
    const bool should_split =
        active.size() == cluster.size() &&
        static_cast<int>(cluster.size()) >= fl_config_.min_cluster_size &&
        VectorNorm(weighted) < fl_config_.epsilon1 &&
        max_norm > fl_config_.epsilon2;
    if (should_split) {
      // GCFL+ sequences can have different lengths early on; pad.
      size_t max_len = 0;
      for (const auto& s : sims) max_len = std::max(max_len, s.size());
      for (auto& s : sims) s.resize(max_len, 0.0);
      const std::vector<int> split =
          BinaryClusterSimilarity(SimilarityMatrix(sims));
      std::vector<int> g0, g1;
      for (size_t i = 0; i < cluster.size(); ++i) {
        (split[i] == 0 ? g0 : g1).push_back(cluster[i]);
      }
      if (!g0.empty() && !g1.empty()) {
        next_clusters.push_back(std::move(g0));
        next_clusters.push_back(std::move(g1));
        continue;
      }
    }
    next_clusters.push_back(cluster);
  }
  whole_model_clusters_ = std::move(next_clusters);
}

Result<FlResult> FederatedSimulator::Run(FlAlgorithm algorithm) {
  FEXIOT_RETURN_NOT_OK(ValidateFlConfig(fl_config_));
  if (clients_.empty()) {
    return Status::FailedPrecondition(
        "FederatedSimulator::Run called before SetupClients");
  }
  FlResult result;
  whole_model_clusters_.clear();
  for (auto& seq : gradient_sequences_) seq.clear();
  unlocked_layers_ = 1;
  fexiot_partition_.clear();
  layer_stable_rounds_.clear();
  fexiot_round_counter_ = 0;
  double bytes = 0.0;
  double retransmit_bytes = 0.0;
  double uplink_wire_bytes = 0.0;
  double downlink_wire_bytes = 0.0;

  runtime_ = std::make_unique<FederatedRuntime>(
      fl_config_.runtime, static_cast<int>(clients_.size()));

  const RuntimeConfig& rc = fl_config_.runtime;
  // Codec negotiation: the configured default resolved through the
  // FEXIOT_WIRE_CODEC env override, then per-client overrides. When the
  // env var actively overrode the default it forces a uniform fleet (CI
  // sweeps re-run whole configurations under one codec).
  const WireCodec default_codec = ResolveWireCodec(rc.wire_codec);
  codec_of_.assign(clients_.size(), default_codec);
  if (default_codec == rc.wire_codec) {
    const size_t n_over = std::min(codec_of_.size(), rc.client_codecs.size());
    for (size_t c = 0; c < n_over; ++c) codec_of_[c] = rc.client_codecs[c];
  }
  const bool async_policy = rc.policy == RoundPolicy::kAsync ||
                            rc.policy == RoundPolicy::kSemiAsync;
  agg_scale_.clear();
  async_global_.clear();
  if (async_policy && algorithm == FlAlgorithm::kFedAvg) {
    // Snapshot the server model before any local training: all clients
    // still hold the shared initial weights (weighted average == each).
    EnsureAsyncGlobal();
  }
  constexpr size_t kStalenessBuckets = 16;
  if (async_policy) {
    result.staleness_hist.assign(kStalenessBuckets, 0);
  }

  // Compute model: nominal local-training seconds per client (scaled by
  // the straggler profile inside the runtime).
  std::vector<double> train_seconds(clients_.size(), 0.0);
  for (size_t c = 0; c < clients_.size(); ++c) {
    train_seconds[c] = fl_config_.runtime.train_seconds_per_graph *
                       static_cast<double>(clients_[c]->num_train_graphs()) *
                       static_cast<double>(std::max(1, fl_config_.local.epochs));
  }

  const int num_layers = clients_.front()->num_layers();
  for (int round = 0; round < fl_config_.num_rounds; ++round) {
    // 1. Discrete-event round: selection, faults, wire-priced transfers.
    // Broadcast and update carry the same layers, so each client's
    // downlink message prices like its uplink one.
    const std::vector<double> wire_bytes = RoundWireBytesPerClient(algorithm);
    const RoundOutcome outcome =
        runtime_->ExecuteRound(round, wire_bytes, wire_bytes, train_seconds);
    // Async policies: staleness-decayed per-client aggregation scales for
    // the group-averaging algorithms (kFedAvg mixes sequentially instead).
    // Sparse on the applied updates: absent clients read as 1.0.
    agg_scale_.clear();
    if (async_policy) {
      for (const UpdateApplication& u : outcome.applied) {
        agg_scale_[u.client] = StalenessWeight(
            rc.async_alpha0, rc.async_staleness_exponent, u.staleness);
      }
    }

    // 2. Parallel local training of this round's participants. Losses are
    // indexed by participant slot, not client id: the scratch is sized by
    // who trains this round, never by the federation.
    const std::vector<int>& participants = outcome.participants;
    std::vector<double> losses(participants.size(), 0.0);
    pool_->ParallelFor(participants.size(), [&](size_t i) {
      losses[i] = clients_[static_cast<size_t>(participants[i])]->LocalTrain();
    });

    // 3. Aggregation over the updates the runtime delivered.
    switch (algorithm) {
      case FlAlgorithm::kLocalOnly:
        break;
      case FlAlgorithm::kFedAvg: {
        if (async_policy) {
          AsyncFedAvgRound(outcome, &bytes);
          break;
        }
        for (int l = 0; l < num_layers; ++l) {
          AverageLayer(l, outcome.delivered);
          bytes += LayerExchangeBytes(l, outcome.delivered);
        }
        break;
      }
      case FlAlgorithm::kFmtl:
      case FlAlgorithm::kGcfl:
        ClusteredWholeModelRound(algorithm, &bytes, outcome.delivered);
        break;
      case FlAlgorithm::kFexiot: {
        const bool split = FexiotRound(&bytes, outcome.delivered);
        // Progressive unlock: once the current layers' clustering is
        // stable (no split this round), start exchanging the next layer.
        if (!split && unlocked_layers_ < num_layers) ++unlocked_layers_;
        break;
      }
    }
    retransmit_bytes += outcome.retransmit_bytes;
    uplink_wire_bytes += outcome.uplink_wire_bytes;
    downlink_wire_bytes += outcome.downlink_wire_bytes;

    FlRoundStats stats;
    stats.round = round;
    double loss_sum = 0.0;
    for (double loss : losses) loss_sum += loss;
    stats.mean_local_loss =
        participants.empty()
            ? 0.0
            : loss_sum / static_cast<double>(participants.size());
    stats.cumulative_comm_bytes = bytes;
    stats.num_clusters = static_cast<int>(std::max<size_t>(
        1, algorithm == FlAlgorithm::kFexiot
               ? (fexiot_partition_.empty() ? 1
                                            : fexiot_partition_.back().size())
               : whole_model_clusters_.size()));
    stats.participants = static_cast<int>(participants.size());
    stats.delivered = static_cast<int>(outcome.delivered.size());
    stats.sim_time_s = outcome.end_time_s;
    stats.retransmit_bytes = retransmit_bytes;
    stats.hop_comm_bytes = outcome.hop_bytes;
    stats.aggregator_crashes = outcome.aggregator_crashes;
    stats.subtree_lost_updates = outcome.subtree_lost_updates;
    stats.uplink_wire_bytes = uplink_wire_bytes;
    stats.downlink_wire_bytes = downlink_wire_bytes;
    if (async_policy && !outcome.applied.empty()) {
      double staleness_sum = 0.0;
      for (const UpdateApplication& u : outcome.applied) {
        staleness_sum += static_cast<double>(u.staleness);
        const size_t bucket =
            std::min(static_cast<size_t>(u.staleness), kStalenessBuckets - 1);
        ++result.staleness_hist[bucket];
      }
      stats.mean_staleness =
          staleness_sum / static_cast<double>(outcome.applied.size());
    }
    if (fl_config_.eval_each_round) {
      std::vector<double> accs(clients_.size(), 0.0);
      pool_->ParallelFor(clients_.size(), [&](size_t c) {
        accs[c] = clients_[c]->EvaluateLocal().accuracy;
      });
      double acc_sum = 0.0;
      for (double a : accs) acc_sum += a;
      stats.mean_accuracy = acc_sum / static_cast<double>(clients_.size());
    }
    result.rounds.push_back(stats);
  }

  // Final evaluation (parallel across clients).
  result.client_metrics.resize(clients_.size());
  pool_->ParallelFor(clients_.size(), [&](size_t c) {
    result.client_metrics[c] = clients_[c]->EvaluateLocal();
  });

  std::vector<double> accs;
  for (const auto& m : result.client_metrics) {
    result.mean.accuracy += m.accuracy;
    result.mean.precision += m.precision;
    result.mean.recall += m.recall;
    result.mean.f1 += m.f1;
    accs.push_back(m.accuracy);
  }
  const double n = static_cast<double>(clients_.size());
  result.mean.accuracy /= n;
  result.mean.precision /= n;
  result.mean.recall /= n;
  result.mean.f1 /= n;
  result.accuracy_std = ComputeMeanStd(accs).stddev;
  result.total_comm_bytes = bytes;
  result.total_uplink_wire_bytes = uplink_wire_bytes;
  result.total_downlink_wire_bytes = downlink_wire_bytes;
  result.total_sim_time_s = runtime_->now();
  result.total_retransmit_bytes = retransmit_bytes;

  // Final cluster assignment per client (bottom layer).
  result.client_cluster.assign(clients_.size(), 0);
  static const std::vector<std::vector<int>> kEmpty;
  const auto& clusters =
      algorithm == FlAlgorithm::kFexiot
          ? (fexiot_partition_.empty() ? kEmpty : fexiot_partition_.back())
          : whole_model_clusters_;
  for (size_t k = 0; k < clusters.size(); ++k) {
    for (int c : clusters[k]) {
      result.client_cluster[static_cast<size_t>(c)] = static_cast<int>(k);
    }
  }
  return result;
}

}  // namespace fexiot
