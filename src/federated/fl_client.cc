#include "federated/fl_client.h"

namespace fexiot {

FlClient::FlClient(int id, const GnnConfig& model_config,
                   const TrainConfig& train,
                   std::vector<PreparedGraph> train_graphs,
                   std::vector<PreparedGraph> test_graphs, Rng rng)
    : id_(id),
      model_([&] {
        GnnConfig c = model_config;
        // All clients share initial weights (same seed), as FL requires.
        return GnnModel(c);
      }()),
      train_config_(train),
      train_graphs_(std::move(train_graphs)),
      test_graphs_(std::move(test_graphs)),
      rng_(rng) {
  layer_deltas_.resize(static_cast<size_t>(model_.num_layers()));
  layer_delta_ema_.resize(static_cast<size_t>(model_.num_layers()));
}

double FlClient::LocalTrain() {
  std::vector<std::vector<double>> before(
      static_cast<size_t>(model_.num_layers()));
  for (int l = 0; l < model_.num_layers(); ++l) {
    before[static_cast<size_t>(l)] = model_.GetLayerFlat(l);
  }
  GnnTrainer trainer(&model_, train_config_);
  const double loss = trainer.Train(train_graphs_, &rng_);
  for (int l = 0; l < model_.num_layers(); ++l) {
    std::vector<double> after = model_.GetLayerFlat(l);
    auto& delta = layer_deltas_[static_cast<size_t>(l)];
    delta.resize(after.size());
    for (size_t i = 0; i < after.size(); ++i) {
      delta[i] = after[i] - before[static_cast<size_t>(l)][i];
    }
    auto& ema = layer_delta_ema_[static_cast<size_t>(l)];
    if (ema.empty()) {
      ema = delta;
    } else {
      for (size_t i = 0; i < ema.size(); ++i) {
        ema[i] = 0.5 * ema[i] + 0.5 * delta[i];
      }
    }
  }
  return loss;
}

ClassificationMetrics FlClient::EvaluateLocal() {
  GnnTrainer trainer(&model_, train_config_);
  return trainer.Evaluate(train_graphs_, test_graphs_);
}

Matrix FlClient::EmbedTrain() {
  GnnTrainer trainer(&model_, train_config_);
  return trainer.Embed(train_graphs_);
}

}  // namespace fexiot
