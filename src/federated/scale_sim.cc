#include "federated/scale_sim.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_set>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "gnn/trainer.h"
#include "runtime/event_queue.h"
#include "runtime/message.h"

namespace fexiot {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void FnvBytes(uint64_t* h, const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

uint64_t GlobalLayersFingerprint(
    const std::vector<std::vector<double>>& layers) {
  uint64_t h = kFnvOffset;
  const uint64_t n = layers.size();
  FnvBytes(&h, &n, sizeof(n));
  for (const auto& layer : layers) {
    const uint64_t count = layer.size();
    FnvBytes(&h, &count, sizeof(count));
    FnvBytes(&h, layer.data(), layer.size() * sizeof(double));
  }
  return h;
}

/// Floyd's algorithm: k distinct draws from [0, n) in O(k) time and
/// memory — the O(n) scratch of Rng::SampleWithoutReplacement would
/// reintroduce a per-total-clients allocation on the million-client path.
std::vector<uint64_t> SampleClients(Rng rng, uint64_t n, uint64_t k) {
  std::vector<uint64_t> out;
  if (k >= n) {
    out.resize(n);
    for (uint64_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  for (uint64_t j = n - k; j < n; ++j) {
    const uint64_t t = rng.UniformInt(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  out.assign(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

Status ValidateLink(const LinkModel& link, const char* name) {
  if (link.latency_s < 0.0 || link.bandwidth_bps < 0.0 || link.jitter_s < 0.0)
    return Status::InvalidArgument(std::string(name) +
                                   ": negative latency/bandwidth/jitter");
  if (link.loss_prob < 0.0 || link.loss_prob >= 1.0)
    return Status::InvalidArgument(std::string(name) +
                                   ": loss_prob must be in [0, 1)");
  return Status::OK();
}

}  // namespace

Status ValidateScaleConfig(const ScaleFlConfig& config) {
  if (config.num_clients < 1)
    return Status::InvalidArgument("num_clients must be >= 1");
  if (config.sample_per_round < 1)
    return Status::InvalidArgument("sample_per_round must be >= 1");
  if (config.num_rounds < 1)
    return Status::InvalidArgument("num_rounds must be >= 1");
  if (config.client.graphs_per_client < 2)
    return Status::InvalidArgument(
        "graphs_per_client must be >= 2 (local test split)");
  if (config.client.local_train_fraction <= 0.0 ||
      config.client.local_train_fraction >= 1.0)
    return Status::InvalidArgument(
        "local_train_fraction must be in (0, 1)");
  if (config.client.num_clusters < 0)
    return Status::InvalidArgument("num_clusters must be >= 0");
  if (config.train_seconds_per_graph < 0.0)
    return Status::InvalidArgument("train_seconds_per_graph must be >= 0");
  if (config.deadline_s < 0.0)
    return Status::InvalidArgument("deadline_s must be >= 0");
  if (config.eval_clients < 0)
    return Status::InvalidArgument("eval_clients must be >= 0");
  if (config.threads < 0)
    return Status::InvalidArgument("threads must be >= 0");
  FEXIOT_RETURN_NOT_OK(ValidateLink(config.down_link, "down_link"));
  FEXIOT_RETURN_NOT_OK(ValidateLink(config.up_link, "up_link"));
  if (!IsValidWireCodec(static_cast<uint32_t>(config.wire_codec))) {
    return Status::InvalidArgument("unknown wire_codec");
  }
  FEXIOT_RETURN_NOT_OK(ValidateTreeTopology(config.topology));
  return Status::OK();
}

#ifdef __linux__
namespace {
double ReadProcStatusKb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  const size_t key_len = std::strlen(key);
  char line[256];
  double kb = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      kb = std::atof(line + key_len);
      break;
    }
  }
  std::fclose(f);
  return kb;
}
}  // namespace

double ReadVmHwmMb() { return ReadProcStatusKb("VmHWM:") / 1024.0; }
double ReadVmRssMb() { return ReadProcStatusKb("VmRSS:") / 1024.0; }
#else
double ReadVmHwmMb() { return 0.0; }
double ReadVmRssMb() { return 0.0; }
#endif

ScaleSimulator::ScaleSimulator(const ScaleFlConfig& config)
    : config_(config) {}

Result<ScaleFlResult> ScaleSimulator::Run() {
  FEXIOT_RETURN_NOT_OK(ValidateScaleConfig(config_));
  Stopwatch wall;
  const ScaleFlConfig& cfg = config_;
  const uint64_t n = cfg.num_clients;

  ClientStateStore store(cfg.client, n, cfg.eager_state);
  AggregationTree tree(cfg.topology, MixKey(cfg.seed, /*tree*/ 19));
  NetworkModel network(cfg.down_link, cfg.up_link, {}, {},
                       MixKey(cfg.seed, /*network*/ 7));
  Rng select_rng(MixKey(cfg.seed, /*select*/ 11));
  Rng train_base(MixKey(cfg.seed, /*train*/ 23));
  const size_t pool_threads =
      cfg.threads > 0 ? static_cast<size_t>(cfg.threads)
                      : parallel::NumThreads();
  ThreadPool pool(pool_threads);

  // Probe replica: layer shapes and the initial global (every client
  // replica starts from the same seeded initialization).
  GnnModel probe(cfg.client.model);
  const int num_layers = probe.num_layers();
  const WireCodec codec = ResolveWireCodec(cfg.wire_codec);
  std::vector<std::vector<double>> global(static_cast<size_t>(num_layers));
  double upload_bytes = 0.0;
  double broadcast_bytes = 0.0;
  for (int l = 0; l < num_layers; ++l) {
    global[static_cast<size_t>(l)] = probe.GetLayerFlat(l);
    const double wire =
        static_cast<double>(MessageWireBytes(probe.LayerSize(l), codec));
    upload_bytes += wire;
    broadcast_bytes += wire;
  }

  ScaleFlResult result;
  double sim_time = 0.0;

  for (int round = 0; round < cfg.num_rounds; ++round) {
    const uint64_t k64 = std::min<uint64_t>(
        n, static_cast<uint64_t>(cfg.sample_per_round));
    const std::vector<uint64_t> participants =
        SampleClients(select_rng.ForkAt(static_cast<uint64_t>(round) + 1), n,
                      k64);
    const size_t k = participants.size();

    // Per-participant round scratch — sized by the sample, never by the
    // federation.
    std::vector<double> losses(k, 0.0);
    std::vector<char> lost(k, 0);
    std::vector<double> edge_arrival(k, 0.0);
    std::vector<std::vector<std::vector<double>>> updates(k);

    // Downlink: participants receive the global as it survives the wire
    // codec (fp64 passes &global straight through — no copy, bit-exact).
    const std::vector<std::vector<double>>* broadcast_global = &global;
    std::vector<std::vector<double>> downlinked;
    if (codec != WireCodec::kFp64) {
      downlinked = global;
      for (auto& layer : downlinked) CodecRoundTrip(codec, &layer);
      broadcast_global = &downlinked;
    }

    pool.ParallelFor(k, [&](size_t i) {
      const uint64_t client = participants[i];
      const int cid = static_cast<int>(client);
      std::unique_ptr<MaterializedClient> mc =
          store.Acquire(client, broadcast_global);
      Rng train_rng = train_base.ForkAt(
          MixKey(client, static_cast<uint64_t>(round) + 1));
      GnnTrainer trainer(&mc->model, cfg.train);
      losses[i] = trainer.Train(mc->train_graphs, &train_rng);
      auto& up = updates[i];
      up.resize(static_cast<size_t>(num_layers));
      for (int l = 0; l < num_layers; ++l) {
        // Snapshot what the server will observe: the trained layer after
        // the uplink codec. A pure per-tensor function, so the parallel
        // workers stay bit-identical across thread counts.
        up[static_cast<size_t>(l)] = mc->model.GetLayerFlat(l);
        CodecRoundTrip(codec, &up[static_cast<size_t>(l)]);
      }
      const double train_s = cfg.train_seconds_per_graph *
                             static_cast<double>(mc->train_graphs.size()) *
                             cfg.train.epochs;
      edge_arrival[i] =
          network.TransferSeconds(round, cid, LinkDirection::kDown, 0,
                                  broadcast_bytes) +
          train_s +
          network.TransferSeconds(round, cid, LinkDirection::kUp, 0,
                                  upload_bytes);
      lost[i] = network.LostInTransit(round, cid, 0) ? 1 : 0;
      // Release inside the worker: peak live state <= pool width.
      store.Release(std::move(mc));
    });

    ScaleRoundStats stats;
    stats.round = round;
    stats.participants = static_cast<int>(k);
    double loss_sum = 0.0;
    for (size_t i = 0; i < k; ++i) loss_sum += losses[i];
    stats.mean_local_loss = k > 0 ? loss_sum / static_cast<double>(k) : 0.0;

    // Arrived uploads in ascending client order (participants are sorted).
    std::vector<size_t> arrived_idx;
    arrived_idx.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      if (lost[i]) {
        ++stats.lost_updates;
      } else {
        arrived_idx.push_back(i);
      }
    }

    // Route root-ward: delivered indices + root arrival times.
    std::vector<size_t> delivered_idx;
    std::vector<double> root_arrival;
    double last_arrival = 0.0;
    if (tree.enabled()) {
      std::vector<TreeArrival> arrivals;
      arrivals.reserve(arrived_idx.size());
      for (size_t i : arrived_idx)
        arrivals.push_back(TreeArrival{static_cast<int>(participants[i]),
                                       edge_arrival[i]});
      const TreeDelivery td =
          tree.Route(round, arrivals, upload_bytes, nullptr);
      stats.aggregator_crashes = td.aggregator_crashes;
      stats.subtree_lost_updates = td.subtree_lost;
      stats.hop_bytes = td.hop_bytes;
      stats.events += static_cast<uint64_t>(td.edge_forwards) +
                      static_cast<uint64_t>(td.regional_forwards);
      last_arrival = td.last_arrival_s;
      // Map delivered clients (ascending) back to participant indices.
      size_t cursor = 0;
      for (size_t d = 0; d < td.delivered.size(); ++d) {
        const auto client = static_cast<uint64_t>(td.delivered[d]);
        while (participants[arrived_idx[cursor]] != client) ++cursor;
        delivered_idx.push_back(arrived_idx[cursor]);
        root_arrival.push_back(td.root_arrival_s[d]);
      }
    } else {
      stats.hop_bytes.assign(1, 0.0);
      delivered_idx = arrived_idx;
      for (size_t i : arrived_idx) {
        root_arrival.push_back(edge_arrival[i]);
        last_arrival = std::max(last_arrival, edge_arrival[i]);
      }
    }
    // Hop 0 counts every transmission attempt, including lost ones.
    stats.hop_bytes[0] += static_cast<double>(k) * upload_bytes;

    // Deadline policy: updates reaching the root late are discarded.
    if (cfg.deadline_s > 0.0) {
      std::vector<size_t> in_time;
      in_time.reserve(delivered_idx.size());
      for (size_t d = 0; d < delivered_idx.size(); ++d) {
        if (root_arrival[d] <= cfg.deadline_s) {
          in_time.push_back(delivered_idx[d]);
        } else {
          ++stats.late_updates;
        }
      }
      delivered_idx = std::move(in_time);
    }
    stats.delivered = static_cast<int>(delivered_idx.size());

    // Streaming FedAvg: replay AverageLayer's exact per-element
    // multiply-adds — weight_sum accumulated ascending first, then one
    // Add(w_c / weight_sum, x_c) per delivered client in ascending order.
    // Under the flat topology this is bit-identical to the eager
    // aggregation; tree merges reassociate (DESIGN.md 5.10).
    if (!delivered_idx.empty()) {
      double weight_sum = 0.0;
      for (size_t d = 0; d < delivered_idx.size(); ++d) weight_sum += 1.0;
      if (weight_sum > 0.0) {
        const int depth = tree.depth();
        for (int l = 0; l < num_layers; ++l) {
          StreamingAccumulator root_acc, regional_acc, edge_acc;
          int cur_edge = -1;
          int cur_regional = -1;
          for (size_t d : delivered_idx) {
            const int client = static_cast<int>(participants[d]);
            const double wc = 1.0 * 1.0 / weight_sum;
            if (depth == 1) {
              root_acc.Add(wc, updates[d][static_cast<size_t>(l)]);
              continue;
            }
            const int edge = tree.EdgeOf(client);
            if (edge != cur_edge) {
              // New edge group: fold the finished edge into its parent
              // tier before (depth 3) checking for a regional boundary.
              if (cur_edge >= 0) {
                (depth == 3 ? regional_acc : root_acc).Merge(edge_acc);
                edge_acc = StreamingAccumulator();
              }
              if (depth == 3) {
                const int regional = tree.RegionalOf(edge);
                if (regional != cur_regional) {
                  if (cur_regional >= 0) {
                    root_acc.Merge(regional_acc);
                    regional_acc = StreamingAccumulator();
                  }
                  cur_regional = regional;
                }
              }
              cur_edge = edge;
            }
            edge_acc.Add(wc, updates[d][static_cast<size_t>(l)]);
          }
          if (depth >= 2 && cur_edge >= 0)
            (depth == 3 ? regional_acc : root_acc).Merge(edge_acc);
          if (depth == 3 && cur_regional >= 0) root_acc.Merge(regional_acc);
          // Pre-normalized weights sum to 1, so the weighted sum is the
          // weighted mean — same math AverageLayer installs.
          global[static_cast<size_t>(l)] = root_acc.weighted_sum();
        }
      }
    }

    stats.events += 3 * static_cast<uint64_t>(k);  // broadcast, train, upload
    double round_comm = static_cast<double>(k) * broadcast_bytes;
    for (double b : stats.hop_bytes) round_comm += b;
    result.total_comm_bytes += round_comm;
    const double round_end =
        cfg.deadline_s > 0.0 ? cfg.deadline_s : last_arrival;
    sim_time += round_end;
    stats.sim_time_s = sim_time;
    result.total_events += stats.events;
    result.rounds.push_back(std::move(stats));
  }

  // Final-round evaluation on a sampled client set.
  if (cfg.eval_clients > 0) {
    const std::vector<uint64_t> eval_clients = SampleClients(
        select_rng.ForkAt(0xEEEEULL), n,
        std::min<uint64_t>(n, static_cast<uint64_t>(cfg.eval_clients)));
    std::vector<ClassificationMetrics> metrics(eval_clients.size());
    pool.ParallelFor(eval_clients.size(), [&](size_t i) {
      std::unique_ptr<MaterializedClient> mc =
          store.Acquire(eval_clients[i], &global);
      GnnTrainer trainer(&mc->model, cfg.train);
      metrics[i] = trainer.Evaluate(mc->train_graphs, mc->test_graphs);
      store.Release(std::move(mc));
    });
    for (size_t i = 0; i < eval_clients.size(); ++i) {
      result.sampled_metrics.emplace_back(eval_clients[i], metrics[i]);
      result.mean.accuracy += metrics[i].accuracy;
      result.mean.precision += metrics[i].precision;
      result.mean.recall += metrics[i].recall;
      result.mean.f1 += metrics[i].f1;
      result.mean.true_positive += metrics[i].true_positive;
      result.mean.true_negative += metrics[i].true_negative;
      result.mean.false_positive += metrics[i].false_positive;
      result.mean.false_negative += metrics[i].false_negative;
    }
    if (!eval_clients.empty()) {
      const auto m = static_cast<double>(eval_clients.size());
      result.mean.accuracy /= m;
      result.mean.precision /= m;
      result.mean.recall /= m;
      result.mean.f1 /= m;
    }
  }

  result.global_layers = std::move(global);
  result.global_fingerprint = GlobalLayersFingerprint(result.global_layers);
  result.total_sim_time_s = sim_time;
  result.materializations = store.materializations();
  result.peak_live_clients = store.peak_live();
  result.peak_rss_mb = ReadVmHwmMb();
  result.current_rss_mb = ReadVmRssMb();
  result.wall_seconds = wall.ElapsedSeconds();
  result.events_per_sec =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.total_events) / result.wall_seconds
          : 0.0;
  return result;
}

}  // namespace fexiot
