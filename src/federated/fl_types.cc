#include "federated/fl_types.h"

#include <cstdio>

namespace fexiot {

const char* FlAlgorithmName(FlAlgorithm algorithm) {
  switch (algorithm) {
    case FlAlgorithm::kFedAvg:
      return "FedAvg";
    case FlAlgorithm::kFmtl:
      return "FMTL";
    case FlAlgorithm::kGcfl:
      return "GCFL+";
    case FlAlgorithm::kFexiot:
      return "FexIoT";
    case FlAlgorithm::kLocalOnly:
      return "Client";
  }
  return "?";
}

Status ValidateFlConfig(const FlConfig& config) {
  if (config.num_rounds <= 0) {
    return Status::InvalidArgument("FlConfig: num_rounds must be > 0");
  }
  if (config.local_train_fraction <= 0.0 ||
      config.local_train_fraction >= 1.0) {
    return Status::InvalidArgument(
        "FlConfig: local_train_fraction must be in (0, 1)");
  }
  if (config.epsilon1 < 0.0 || config.epsilon2 < 0.0) {
    return Status::InvalidArgument(
        "FlConfig: epsilon1/epsilon2 must be >= 0");
  }
  if (config.min_cluster_size < 2) {
    return Status::InvalidArgument("FlConfig: min_cluster_size must be >= 2");
  }
  if (config.threads < 0) {
    return Status::InvalidArgument("FlConfig: threads must be >= 0");
  }
  return ValidateRuntimeConfig(config.runtime);
}

std::string FlResult::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "acc=%.3f (std %.3f) prec=%.3f rec=%.3f f1=%.3f comm=%.1fMB",
                mean.accuracy, accuracy_std, mean.precision, mean.recall,
                mean.f1, total_comm_bytes / (1024.0 * 1024.0));
  return buf;
}

}  // namespace fexiot
