#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "gnn/trainer.h"
#include "ml/metrics.h"
#include "runtime/runtime.h"

namespace fexiot {

/// \brief Federated aggregation strategies compared in Figure 4.
enum class FlAlgorithm {
  kFedAvg,     ///< McMahan et al.: global weighted averaging
  kFmtl,       ///< clustered FL (Sattler et al.): whole-model bisection
  kGcfl,       ///< GCFL+ (Xie et al.): gradient-sequence clustering
  kFexiot,     ///< this paper: layer-wise recursive clustering (Alg. 1)
  kLocalOnly,  ///< "Client": self-training, no communication
};

const char* FlAlgorithmName(FlAlgorithm algorithm);

/// \brief Federated simulation configuration.
struct FlConfig {
  int num_rounds = 10;
  /// Local training done by every client each round.
  TrainConfig local;
  /// Algorithm 1 thresholds: clustering starts when the weighted global
  /// update is stationary (norm < epsilon1) while some client still moves
  /// a lot (max norm > epsilon2). The paper uses 1.2 / 0.8 and notes the
  /// values are "related to the size of model weights"; our layer deltas
  /// live at a smaller scale (see EXPERIMENTS.md), hence smaller defaults.
  double epsilon1 = 0.5;
  double epsilon2 = 0.2;
  /// Fraction of each client's data used for local training (rest tests).
  double local_train_fraction = 0.8;
  /// Minimum cluster size eligible for further bisection.
  int min_cluster_size = 4;
  /// A bisection is committed only when mean within-half cosine similarity
  /// exceeds mean cross-half similarity by this margin (guards against
  /// splitting on label-skew noise).
  double split_quality_margin = 0.05;
  /// Worker threads for parallel client training (0 = hardware).
  int threads = 0;
  /// Evaluate every client after each round and record the mean accuracy
  /// in FlRoundStats (time-to-accuracy curves). Off by default: evaluation
  /// is deterministic and consumes no RNG, but it costs one full local
  /// eval per client per round.
  bool eval_each_round = false;
  uint64_t seed = 59;
  /// Discrete-event runtime: network links, faults, round policy. The
  /// default is the passthrough runtime (synchronous, zero latency, no
  /// faults), which reproduces the paper's results bit-identically.
  RuntimeConfig runtime;
};

/// \brief Rejects invalid federated configurations (non-positive rounds,
/// local_train_fraction outside (0,1), negative epsilons, bad runtime
/// knobs) with a descriptive Status instead of silently misbehaving.
Status ValidateFlConfig(const FlConfig& config);

/// \brief Per-round telemetry.
struct FlRoundStats {
  int round = 0;
  double mean_local_loss = 0.0;
  /// Cumulative bytes transferred (upload + download) up to this round.
  double cumulative_comm_bytes = 0.0;
  /// Number of leaf clusters at the bottom layer after this round.
  int num_clusters = 1;
  /// Clients selected and alive this round (ran local training).
  int participants = 0;
  /// Clients whose updates arrived in time and entered aggregation.
  int delivered = 0;
  /// Simulated wall-clock at the end of this round (seconds).
  double sim_time_s = 0.0;
  /// Cumulative retransmitted bytes (timeout+retry policy) up to here.
  double retransmit_bytes = 0.0;
  /// Mean client accuracy after this round's aggregation; -1 unless
  /// FlConfig::eval_each_round is set.
  double mean_accuracy = -1.0;
  /// Async policies: mean staleness of the updates applied this round
  /// (0 under the round-based policies and when nothing was applied).
  double mean_staleness = 0.0;
  /// Hierarchical topology: bytes crossing each uplink tier this round
  /// (0: clients->edge, 1: edge->parent, 2: regional->root). Empty under
  /// the flat topology.
  std::vector<double> hop_comm_bytes;
  /// Cumulative real on-wire bytes up to this round, priced from the
  /// encoded message sizes (framing + codec lanes, every copy sent incl.
  /// retransmissions and losses). Unlike cumulative_comm_bytes — which
  /// keeps the historical payload-lane accounting — these shrink under
  /// the lossy wire codecs (runtime/codec.h).
  double uplink_wire_bytes = 0.0;
  double downlink_wire_bytes = 0.0;
  /// Aggregators down this round (tree topology only).
  int aggregator_crashes = 0;
  /// Arrived updates dropped because an aggregator on their path crashed.
  int subtree_lost_updates = 0;
};

/// \brief Outcome of one federated run.
struct FlResult {
  /// Final metrics of each client's model on its local test split.
  std::vector<ClassificationMetrics> client_metrics;
  /// Averages over clients.
  ClassificationMetrics mean;
  /// Std-dev of client accuracies (stability evaluation).
  double accuracy_std = 0.0;
  double total_comm_bytes = 0.0;
  /// Real on-wire byte totals over the whole run (see
  /// FlRoundStats::uplink_wire_bytes): what actually crossed the links,
  /// per direction, under the negotiated wire codecs.
  double total_uplink_wire_bytes = 0.0;
  double total_downlink_wire_bytes = 0.0;
  /// Simulated wall-clock of the whole run (seconds; 0 under the
  /// passthrough runtime's zero-latency links).
  double total_sim_time_s = 0.0;
  double total_retransmit_bytes = 0.0;
  std::vector<FlRoundStats> rounds;
  /// Final first-layer cluster assignment per client.
  std::vector<int> client_cluster;
  /// Async policies: histogram of per-update staleness over the whole run.
  /// Bucket i counts updates applied with staleness i; the last bucket
  /// absorbs the overflow. Empty under the round-based policies.
  std::vector<uint64_t> staleness_hist;

  std::string Summary() const;
};

}  // namespace fexiot
