#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "federated/fl_client.h"
#include "graph/dataset.h"
#include "runtime/runtime.h"

namespace fexiot {

/// \brief In-process federated learning simulator.
///
/// Hosts n FlClients and a logical server, runs rounds of local training +
/// aggregation under one of five strategies, and accounts every byte
/// exchanged (Figure 7). The FexIoT strategy implements the paper's
/// Algorithm 1: bottom-up layer-wise recursive clustering with the
/// (epsilon1, epsilon2) stationarity/heterogeneity gate, progressive layer
/// unlocking ("at the initial stage only the first layer's parameters are
/// uploaded"), and per-cluster FedAvg.
///
/// Each strategy executes as a program on the discrete-event
/// FederatedRuntime (runtime/runtime.h): the runtime decides who
/// participates (crash/rejoin faults), prices the broadcast and every
/// upload through per-link network models from serialized wire-message
/// sizes, and applies the server round policy (synchronous / deadline /
/// timeout+retry). Aggregation is restricted to the updates the runtime
/// delivered. Under the default passthrough runtime (zero latency, no
/// faults, synchronous rounds) every client delivers instantly and the
/// results are bit-identical to the plain synchronous simulator
/// (DESIGN.md 5.7).
class FederatedSimulator {
 public:
  FederatedSimulator(GnnConfig model_config, FlConfig fl_config);

  /// \brief Builds clients from a dataset + partition. Each client splits
  /// its shard into local train/test by fl_config.local_train_fraction.
  void SetupClients(const GraphDataset& data, const ClientPartition& part);

  /// \brief Builds clients whose entire shard is training data and whose
  /// evaluation set is the held-out pool of the client's latent cluster
  /// (the Section IV-C 80/20 protocol).
  void SetupClients(const GraphDataset& data, const ClientPartition& part,
                    const std::vector<GraphDataset>& cluster_tests);

  /// \brief Runs \p algorithm for the configured rounds and evaluates.
  /// Fails with InvalidArgument when the FlConfig (or its runtime section)
  /// is out of range.
  Result<FlResult> Run(FlAlgorithm algorithm);

  size_t num_clients() const { return clients_.size(); }
  FlClient* client(size_t i) { return clients_[i].get(); }

  /// Event trace of the last Run (empty unless
  /// fl_config.runtime.record_trace).
  const std::vector<std::string>& runtime_trace() const {
    static const std::vector<std::string> kEmpty;
    return runtime_ ? runtime_->trace() : kEmpty;
  }

 private:
  /// Weighted FedAvg of one layer over a client group; installs result.
  /// Under the async runtime policies each client's weight is additionally
  /// scaled by its staleness decay alpha(s) (agg_scale_, 1.0 otherwise).
  void AverageLayer(int layer, const std::vector<int>& group);

  /// Async FedAvg: sequential server-side mixing in the runtime's
  /// deterministic application order. kAsync mixes every update
  /// immediately (global <- (1-alpha(s)) * global + alpha(s) * update);
  /// kSemiAsync mixes each flushed tier as a client-weighted mini-batch.
  /// Installs the resulting global to the delivered clients.
  void AsyncFedAvgRound(const RoundOutcome& outcome, double* bytes);

  /// Lazily initializes the explicit async global model from the clients'
  /// shared pre-round weights (all clients start from one seed).
  void EnsureAsyncGlobal();
  /// Bytes for exchanging (up + down) one layer with a client group:
  /// each member's payload lanes under its negotiated codec. Under the
  /// default fp64 fleet this is exactly the historical
  /// 2 * |group| * LayerBytes(layer) accounting.
  double LayerExchangeBytes(int layer, const std::vector<int>& group) const;

  /// Effective wire codec of client \p c this run (fp64 before Run).
  WireCodec CodecOf(int c) const;
  /// What the other end observes after \p raw crossed a link of client
  /// \p c: \p raw itself under the fp64 passthrough (no copy), otherwise
  /// \p *scratch filled with the quantize-dequantize image of \p raw.
  /// Both directions use c's negotiated codec, so one helper serves
  /// uplink reads and downlink installs.
  const std::vector<double>& ThroughWire(int c, const std::vector<double>& raw,
                                         std::vector<double>* scratch) const;

  /// Members of \p group whose updates the runtime delivered this round.
  /// \p delivered is RoundOutcome::delivered (sorted ascending) — looked
  /// up by binary search, so no O(total-clients) mask is materialized.
  std::vector<int> FilterDelivered(const std::vector<int>& group,
                                   const std::vector<int>& delivered) const;

  /// Staleness decay alpha(s) of client \p c this round (async policies);
  /// 1.0 for every client the runtime applied no update for.
  double AggScale(int c) const;

  /// Parameter layers FexIoT exchanges in the upcoming round (progressive
  /// unlock minus the lazy stable-layer skip), without mutating state.
  std::vector<int> FexiotLayersThisRound() const;

  /// Serialized wire bytes of one round's downlink broadcast / uplink
  /// update per client under \p algorithm (prices the network model
  /// transfers). Indexed by client id: each client's messages are encoded
  /// with its own negotiated codec, so a mixed fleet prices unevenly.
  std::vector<double> RoundWireBytesPerClient(FlAlgorithm algorithm) const;

  /// One FexIoT round (Algorithm 1 with a persistent layer-wise cluster
  /// tree): aggregates every unlocked layer within its current groups
  /// (restricted to delivered clients), evaluates the (epsilon1, epsilon2)
  /// gate per group, and permanently bisects a group when the gate fires —
  /// the split refines the partition of that layer and all deeper layers.
  /// Splits are deferred while any group member's update is missing.
  /// Returns true if any split happened this round.
  bool FexiotRound(double* bytes, const std::vector<int>& delivered);

  /// Whole-model clustered aggregation step used by FMTL / GCFL+.
  void ClusteredWholeModelRound(FlAlgorithm algorithm, double* bytes,
                                const std::vector<int>& delivered);

  /// Cosine-similarity matrix over per-client vectors.
  static Matrix SimilarityMatrix(const std::vector<std::vector<double>>& v);

  std::vector<double> ConcatAllLayers(int client) const;
  std::vector<double> ConcatAllDeltas(int client) const;

  GnnConfig model_config_;
  FlConfig fl_config_;
  Rng rng_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<FederatedRuntime> runtime_;
  std::vector<std::unique_ptr<FlClient>> clients_;
  std::vector<double> client_weight_;  // |G_c| / |G|
  // Effective per-client wire codec of the current Run: the configured
  // global default resolved through FEXIOT_WIRE_CODEC, then per-client
  // overrides (skipped when the env var forces a fleet-wide codec).
  std::vector<WireCodec> codec_of_;
  // Per-round staleness decay alpha(s), keyed by client id and sparse on
  // the clients an update was applied for (async policies); every absent
  // client scales by 1.0 via AggScale, so AverageLayer is unchanged and
  // the map stays O(applied updates), not O(total clients).
  std::unordered_map<int, double> agg_scale_;
  // Explicit server model for sequential async mixing (per layer).
  std::vector<std::vector<double>> async_global_;

  // FMTL / GCFL+ persistent cluster state.
  std::vector<std::vector<int>> whole_model_clusters_;
  // GCFL+ per-client gradient sequences (flattened deltas, truncated).
  std::vector<std::deque<std::vector<double>>> gradient_sequences_;
  // FexIoT persistent layer-wise cluster tree: fexiot_partition_[l] is the
  // client partition used when aggregating layer l (deeper layers refine
  // shallower ones). Progressive unlocking: only layers < unlocked_layers_
  // are exchanged, starting from the first layer (paper Section IV-C,
  // communication cost discussion).
  std::vector<std::vector<std::vector<int>>> fexiot_partition_;
  int unlocked_layers_ = 1;
  // Rounds since the partition of each layer last changed; stable layers
  // (>= 3 rounds unchanged) are exchanged only every other round — the
  // steady-state component of FexIoT's communication saving ("clients in
  // the same cluster share more layers").
  std::vector<int> layer_stable_rounds_;
  int fexiot_round_counter_ = 0;
};

}  // namespace fexiot
