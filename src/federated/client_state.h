#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "gnn/gnn_model.h"
#include "gnn/trainer.h"
#include "graph/corpus.h"

namespace fexiot {

/// \brief Recipe for materializing any client's private state on demand.
///
/// A LazyClientSpec is the *entire* description of a (possibly
/// million-client) federation: no per-client vector anywhere. A client's
/// shard is a pure function of (corpus, corpus_seed, client_id) via
/// MaterializeClientShard, so state can be built while one of the
/// client's events is in flight and released afterwards, and
/// rematerialization is bit-identical for any participation schedule and
/// thread count.
struct LazyClientSpec {
  CorpusOptions corpus;
  uint64_t corpus_seed = 0xC0FFEEULL;
  /// Graphs per client shard (>= 2 so the train/test split is non-empty).
  int graphs_per_client = 6;
  /// Latent household clusters (device-profile covariate shift); client c
  /// belongs to cluster c % num_clusters. 0 or strength 0 disables it.
  int num_clusters = 1;
  double profile_strength = 0.0;
  /// Leading fraction of the shard used for local training; the rest is
  /// the local test split (mirrors FlSimulator::SetupClients).
  double local_train_fraction = 0.8;
  /// Shared GNN architecture; every materialization starts from the same
  /// seeded initialization, so install-global + train is stateless FedAvg.
  GnnConfig model;
};

/// \brief One client's fully materialized state: prepared graph splits
/// plus a model replica, built by ClientStateStore::Acquire and handed
/// back via Release when the client's in-flight event completes.
struct MaterializedClient {
  explicit MaterializedClient(const GnnConfig& config) : model(config) {}

  uint64_t id = 0;
  std::vector<PreparedGraph> train_graphs;
  std::vector<PreparedGraph> test_graphs;
  GnnModel model;
  /// CorpusContentFingerprint of the raw shard this state was built from
  /// (rematerialization-identity probe).
  uint64_t shard_fingerprint = 0;
};

/// \brief On-demand client-state factory with peak-liveness accounting.
///
/// Lazy mode (the default) holds *nothing* per client: every Acquire
/// regenerates the shard from the spec's counter streams, prepares the
/// graph splits, and seeds a fresh model replica (optionally installing
/// the current global weights). Eager mode — the bit-identity baseline —
/// pre-materializes every raw shard up front and only re-prepares on
/// Acquire, so both modes return identical state.
///
/// Thread safety: Acquire/Release may be called concurrently for distinct
/// clients (the scale simulator's ParallelFor does exactly that); all
/// bookkeeping is atomic. Acquiring the same client twice concurrently is
/// allowed and yields two independent identical states.
class ClientStateStore {
 public:
  ClientStateStore(const LazyClientSpec& spec, uint64_t num_clients,
                   bool eager);

  /// \brief Materializes client \p client. When \p global is non-null its
  /// flat layers are installed into the replica (FedAvg broadcast).
  std::unique_ptr<MaterializedClient> Acquire(
      uint64_t client, const std::vector<std::vector<double>>* global);

  /// \brief Returns a client's state; its memory is freed here, so peak
  /// live state tracks in-flight clients, not the federation size.
  void Release(std::unique_ptr<MaterializedClient> client);

  /// Shard fingerprint of \p client (materializes transiently when lazy).
  uint64_t ShardFingerprint(uint64_t client) const;

  uint64_t num_clients() const { return num_clients_; }
  bool eager() const { return eager_; }

  /// Total Acquire calls served (lazy rematerialization count).
  uint64_t materializations() const { return materializations_.load(); }
  /// Currently acquired-but-unreleased clients.
  uint64_t live() const { return live_.load(); }
  /// High-water mark of live() — the O(active clients) memory witness.
  uint64_t peak_live() const { return peak_live_.load(); }

 private:
  std::vector<InteractionGraph> ShardFor(uint64_t client) const;

  LazyClientSpec spec_;
  uint64_t num_clients_;
  bool eager_;
  /// Eager mode only: raw shards, indexed by client.
  std::vector<std::vector<InteractionGraph>> eager_shards_;

  std::atomic<uint64_t> materializations_{0};
  std::atomic<uint64_t> live_{0};
  std::atomic<uint64_t> peak_live_{0};
};

}  // namespace fexiot
