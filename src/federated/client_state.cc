#include "federated/client_state.h"

#include <algorithm>
#include <utility>

namespace fexiot {

ClientStateStore::ClientStateStore(const LazyClientSpec& spec,
                                   uint64_t num_clients, bool eager)
    : spec_(spec), num_clients_(num_clients), eager_(eager) {
  if (eager_) {
    eager_shards_.resize(num_clients_);
    for (uint64_t c = 0; c < num_clients_; ++c) {
      eager_shards_[c] = MaterializeClientShard(
          spec_.corpus, spec_.corpus_seed, c, spec_.graphs_per_client,
          spec_.num_clusters, spec_.profile_strength);
    }
  }
}

std::vector<InteractionGraph> ClientStateStore::ShardFor(
    uint64_t client) const {
  if (eager_) return eager_shards_[client];
  return MaterializeClientShard(spec_.corpus, spec_.corpus_seed, client,
                                spec_.graphs_per_client, spec_.num_clusters,
                                spec_.profile_strength);
}

std::unique_ptr<MaterializedClient> ClientStateStore::Acquire(
    uint64_t client, const std::vector<std::vector<double>>* global) {
  const std::vector<InteractionGraph> shard = ShardFor(client);
  auto state = std::make_unique<MaterializedClient>(spec_.model);
  state->id = client;
  state->shard_fingerprint = CorpusContentFingerprint(shard);

  // Suffix split mirroring FlSimulator::SetupClients: leading fraction
  // trains, the rest is the local test pool; when the split leaves the
  // test side empty, one training graph moves over.
  const auto n = static_cast<int>(shard.size());
  int n_train = std::max(
      1, static_cast<int>(spec_.local_train_fraction * n));
  n_train = std::min(n_train, n);
  std::vector<InteractionGraph> train(shard.begin(), shard.begin() + n_train);
  std::vector<InteractionGraph> test(shard.begin() + n_train, shard.end());
  if (test.empty() && train.size() > 1) {
    test.push_back(std::move(train.back()));
    train.pop_back();
  }
  state->train_graphs = PrepareGraphs(train, spec_.model);
  state->test_graphs = PrepareGraphs(test, spec_.model);

  if (global != nullptr) {
    for (int l = 0; l < state->model.num_layers(); ++l) {
      state->model.SetLayerFlat(l, (*global)[static_cast<size_t>(l)]);
    }
  }

  materializations_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t now_live = live_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t peak = peak_live_.load(std::memory_order_relaxed);
  while (now_live > peak &&
         !peak_live_.compare_exchange_weak(peak, now_live,
                                           std::memory_order_relaxed)) {
  }
  return state;
}

void ClientStateStore::Release(std::unique_ptr<MaterializedClient> client) {
  if (client == nullptr) return;
  live_.fetch_sub(1, std::memory_order_relaxed);
  client.reset();  // state freed here: peak memory tracks in-flight clients
}

uint64_t ClientStateStore::ShardFingerprint(uint64_t client) const {
  return CorpusContentFingerprint(ShardFor(client));
}

}  // namespace fexiot
