#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "federated/fl_types.h"
#include "gnn/gnn_model.h"
#include "gnn/trainer.h"

namespace fexiot {

/// \brief One federated client (a house): holds its private graph shards,
/// its GNN replica and its local linear head. Raw graphs never leave the
/// client; only (layer-wise) model weights are exchanged.
class FlClient {
 public:
  FlClient(int id, const GnnConfig& model_config, const TrainConfig& train,
           std::vector<PreparedGraph> train_graphs,
           std::vector<PreparedGraph> test_graphs, Rng rng);

  int id() const { return id_; }
  size_t num_train_graphs() const { return train_graphs_.size(); }

  /// \brief Snapshot weights, run local epochs, record per-layer deltas.
  /// Returns mean local loss.
  double LocalTrain();

  /// Flattened weights of layer \p l after local training.
  std::vector<double> LayerWeights(int l) const {
    return model_.GetLayerFlat(l);
  }
  /// Flattened delta of layer \p l from the last LocalTrain call.
  const std::vector<double>& LayerDelta(int l) const {
    return layer_deltas_[static_cast<size_t>(l)];
  }
  /// Exponential moving average of the layer's deltas across rounds — the
  /// stable per-client drift direction used as the clustering signal.
  const std::vector<double>& LayerDeltaEma(int l) const {
    return layer_delta_ema_[static_cast<size_t>(l)];
  }
  /// Installs server-aggregated weights for layer \p l.
  void SetLayerWeights(int l, const std::vector<double>& flat) {
    model_.SetLayerFlat(l, flat);
  }

  int num_layers() const { return model_.num_layers(); }
  size_t LayerBytes(int l) const { return model_.LayerBytes(l); }

  /// Local-test metrics using a freshly fit local SGD head.
  ClassificationMetrics EvaluateLocal();

  /// Embeddings of the local training graphs (drift detection, Fig. 6).
  Matrix EmbedTrain();
  const std::vector<PreparedGraph>& train_graphs() const {
    return train_graphs_;
  }
  const std::vector<PreparedGraph>& test_graphs() const {
    return test_graphs_;
  }
  GnnModel* model() { return &model_; }

 private:
  int id_;
  GnnModel model_;
  TrainConfig train_config_;
  std::vector<PreparedGraph> train_graphs_;
  std::vector<PreparedGraph> test_graphs_;
  std::vector<std::vector<double>> layer_deltas_;
  std::vector<std::vector<double>> layer_delta_ema_;
  Rng rng_;
};

}  // namespace fexiot
