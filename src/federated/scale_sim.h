#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "federated/client_state.h"
#include "ml/metrics.h"
#include "runtime/codec.h"
#include "runtime/network_model.h"
#include "runtime/topology.h"

namespace fexiot {

/// \brief Configuration of the million-client lazy-state FedAvg simulator.
///
/// Unlike FlConfig (which hosts every client eagerly and evaluates all of
/// them), ScaleFlConfig describes the federation by a LazyClientSpec and
/// samples a small participant set per round, so memory is O(active
/// clients) regardless of num_clients.
struct ScaleFlConfig {
  uint64_t num_clients = 1000;
  /// Clients sampled (without replacement, seeded per round) each round.
  int sample_per_round = 32;
  int num_rounds = 2;
  /// Recipe materializing any client's shard + replica on demand.
  LazyClientSpec client;
  TrainConfig train;
  /// Eager baseline: pre-materialize every shard up front. Bit-identical
  /// results to the lazy default (pinned by test_scale) — only the memory
  /// profile differs.
  bool eager_state = false;
  /// Hierarchical aggregation topology; flat when edge_fanout == 0.
  TreeTopologyConfig topology;
  /// Client access links (same LinkModel pricing as the event runtime).
  LinkModel down_link;
  LinkModel up_link;
  /// Wire payload codec for every exchanged message (runtime/codec.h);
  /// kFp64 is the bit-exact passthrough default. Lossy codecs shrink the
  /// priced transfers and quantize what crosses each link — deterministic,
  /// so thread-count/lazy-vs-eager bit-identity is preserved. Resolved
  /// through FEXIOT_WIRE_CODEC at Run.
  WireCodec wire_codec = WireCodec::kFp64;
  /// Simulated seconds of local training per prepared graph per epoch.
  double train_seconds_per_graph = 0.0;
  /// Round deadline in simulated seconds; updates arriving at the root
  /// later are discarded. 0 = synchronous (wait for all survivors).
  double deadline_s = 0.0;
  /// Clients evaluated after the final round (sampled; 0 = skip eval).
  int eval_clients = 0;
  /// Worker threads for parallel client training (0 = hardware).
  int threads = 0;
  uint64_t seed = 59;
};

Status ValidateScaleConfig(const ScaleFlConfig& config);

/// \brief Per-round telemetry of a scale run.
struct ScaleRoundStats {
  int round = 0;
  int participants = 0;
  /// Updates aggregated at the root this round.
  int delivered = 0;
  /// Updates lost on the client uplink.
  int lost_updates = 0;
  /// Updates discarded at the root for missing the deadline.
  int late_updates = 0;
  int aggregator_crashes = 0;
  /// Arrived updates dropped because an aggregator on their path crashed.
  int subtree_lost_updates = 0;
  double mean_local_loss = 0.0;
  /// Simulated wall-clock at the end of this round.
  double sim_time_s = 0.0;
  /// Bytes crossing each uplink tier (size = tree depth; [0] = client
  /// uplink incl. lost transmissions).
  std::vector<double> hop_bytes;
  /// Simulated events this round (broadcast + train + upload per
  /// participant, plus one per interior forward).
  uint64_t events = 0;
};

/// \brief Outcome of a scale run.
struct ScaleFlResult {
  std::vector<ScaleRoundStats> rounds;
  /// Final global model, flat per layer.
  std::vector<std::vector<double>> global_layers;
  /// Order-sensitive FNV-1a digest over the final global's bit patterns —
  /// the lazy-vs-eager / thread-parity probe.
  uint64_t global_fingerprint = 0;
  /// Final-round eval on sampled clients, (client, metrics) ascending.
  std::vector<std::pair<uint64_t, ClassificationMetrics>> sampled_metrics;
  /// Mean over sampled_metrics (zeros when eval_clients == 0).
  ClassificationMetrics mean;
  double total_sim_time_s = 0.0;
  double total_comm_bytes = 0.0;
  uint64_t total_events = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  /// Lazy-state accounting (ClientStateStore counters).
  uint64_t materializations = 0;
  uint64_t peak_live_clients = 0;
  /// Process peak / current resident set (MB; 0 off Linux).
  double peak_rss_mb = 0.0;
  double current_rss_mb = 0.0;
};

/// Peak resident set size of this process in MB (VmHWM of
/// /proc/self/status; 0.0 off Linux).
double ReadVmHwmMb();
/// Current resident set size in MB (VmRSS; 0.0 off Linux).
double ReadVmRssMb();

/// \brief Million-client FedAvg driver over lazy client state and the
/// hierarchical streaming-aggregation tree.
///
/// Per round: sample participants (Floyd's O(k) algorithm — no O(n)
/// scratch), fan local training out over a thread pool where each worker
/// Acquires its client's state, trains, snapshots the update, and
/// Releases before returning (peak live state <= pool width), then route
/// arrivals through the aggregation tree and fold delivered updates into
/// streaming accumulators per tier. Clients are stateless (re-initialized
/// from the global each round) and every stochastic draw is counter-based,
/// so results are bit-identical across thread counts, participation
/// schedules, and lazy-vs-eager state (pinned by test_scale).
class ScaleSimulator {
 public:
  explicit ScaleSimulator(const ScaleFlConfig& config);

  /// Runs the configured rounds. InvalidArgument on bad config.
  Result<ScaleFlResult> Run();

 private:
  ScaleFlConfig config_;
};

}  // namespace fexiot
