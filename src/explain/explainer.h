#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "explain/scorer.h"
#include "explain/shap.h"

namespace fexiot {

/// \brief Result of an explanation search: the most responsible connected
/// subgraph and its risk score.
struct ExplanationResult {
  std::vector<int> subgraph_nodes;
  double score = 0.0;
  int model_evaluations = 0;
  /// Leaf subgraphs examined (diagnostics).
  int subgraphs_scored = 0;
};

/// \brief Common interface of the Section IV-D explanation methods.
class Explainer {
 public:
  virtual ~Explainer() = default;
  /// Finds the highest-risk connected subgraph of the scorer's graph.
  virtual ExplanationResult Explain(const GnnGraphScorer& scorer,
                                    Rng* rng) = 0;
  virtual std::string Name() const = 0;
};

/// \brief Shared search options.
struct SearchOptions {
  /// Monte Carlo iterations I.
  int iterations = 8;
  /// Beam width per level (FexIoT's MCBS; ignored by pure MCTS).
  int beam_width = 4;
  /// Maximum explanation subgraph size ("least node number" N_min of
  /// Algorithm 2: pruning stops when the subgraph reaches this size).
  int max_subgraph_nodes = 5;
  /// Exploration-exploitation balance lambda of Eq. 7.
  double lambda = 0.5;
  /// Kernel SHAP samples K (FexIoT) / Shapley MC samples (SubgraphX).
  int shap_samples = 16;
};

/// \brief FexIoT's explanation method: Monte Carlo beam search over
/// connected subgraphs with the kernel-SHAP subgraph score as the
/// immediate reward (Algorithm 2).
class ShapMcbsExplainer : public Explainer {
 public:
  explicit ShapMcbsExplainer(SearchOptions options) : options_(options) {}
  ExplanationResult Explain(const GnnGraphScorer& scorer, Rng* rng) override;
  std::string Name() const override { return "FexIoT"; }

 private:
  SearchOptions options_;
};

/// \brief SubgraphX baseline: Monte Carlo tree search scored by a sampled
/// Shapley value that treats node players as independent (coalition
/// sampling without the joint regression).
class SubgraphXExplainer : public Explainer {
 public:
  explicit SubgraphXExplainer(SearchOptions options) : options_(options) {}
  ExplanationResult Explain(const GnnGraphScorer& scorer, Rng* rng) override;
  std::string Name() const override { return "SubgraphX"; }

 private:
  SearchOptions options_;
};

/// \brief MCTS_GNN baseline: the same tree search rewarded directly by the
/// GNN prediction score of the subgraph.
class MctsGnnExplainer : public Explainer {
 public:
  explicit MctsGnnExplainer(SearchOptions options) : options_(options) {}
  ExplanationResult Explain(const GnnGraphScorer& scorer, Rng* rng) override;
  std::string Name() const override { return "MCTS_GNN"; }

 private:
  SearchOptions options_;
};

/// \brief Explanation quality metrics (Pope et al.): Fidelity is the
/// prediction drop after removing the explanation subgraph; Sparsity is
/// the fraction of the graph NOT in the explanation.
struct FidelitySparsity {
  double fidelity = 0.0;
  double sparsity = 0.0;
};

FidelitySparsity EvaluateExplanation(const GnnGraphScorer& scorer,
                                     const std::vector<int>& subgraph_nodes);

}  // namespace fexiot
