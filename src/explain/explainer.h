#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "explain/scorer.h"
#include "explain/search.h"
#include "explain/shap.h"

namespace fexiot {

/// \brief Common interface of the Section IV-D explanation methods. All
/// three implementations are thin reward adapters over the shared
/// `ParallelSubgraphSearch` core (explain/search.h) — they differ only in
/// how a candidate subgraph's immediate reward is computed.
class Explainer {
 public:
  virtual ~Explainer() = default;
  /// Finds the highest-risk connected subgraph of the scorer's graph.
  virtual ExplanationResult Explain(const GnnGraphScorer& scorer,
                                    Rng* rng) = 0;
  virtual std::string Name() const = 0;
};

/// \brief FexIoT's explanation method: Monte Carlo beam search over
/// connected subgraphs with the kernel-SHAP subgraph score as the
/// immediate reward (Algorithm 2).
class ShapMcbsExplainer : public Explainer {
 public:
  explicit ShapMcbsExplainer(SearchOptions options) : options_(options) {}
  ExplanationResult Explain(const GnnGraphScorer& scorer, Rng* rng) override;
  std::string Name() const override { return "FexIoT"; }

 private:
  SearchOptions options_;
};

/// \brief SubgraphX baseline: Monte Carlo tree search scored by a sampled
/// Shapley value that treats node players as independent (coalition
/// sampling without the joint regression).
class SubgraphXExplainer : public Explainer {
 public:
  explicit SubgraphXExplainer(SearchOptions options) : options_(options) {}
  ExplanationResult Explain(const GnnGraphScorer& scorer, Rng* rng) override;
  std::string Name() const override { return "SubgraphX"; }

 private:
  SearchOptions options_;
};

/// \brief MCTS_GNN baseline: the same tree search rewarded directly by the
/// GNN prediction score of the subgraph. Rewards batch through
/// `GnnGraphScorer::ScoreBatch`, so a whole wave-level of candidates runs
/// as one block-diagonal forward pass.
class MctsGnnExplainer : public Explainer {
 public:
  explicit MctsGnnExplainer(SearchOptions options) : options_(options) {}
  ExplanationResult Explain(const GnnGraphScorer& scorer, Rng* rng) override;
  std::string Name() const override { return "MCTS_GNN"; }

 private:
  SearchOptions options_;
};

/// \brief Explanation quality metrics (Pope et al.): Fidelity is the
/// prediction drop after removing the explanation subgraph; Sparsity is
/// the fraction of the graph NOT in the explanation.
struct FidelitySparsity {
  double fidelity = 0.0;
  double sparsity = 0.0;
};

FidelitySparsity EvaluateExplanation(const GnnGraphScorer& scorer,
                                     const std::vector<int>& subgraph_nodes);

}  // namespace fexiot
