#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "explain/scorer.h"

namespace fexiot {

/// \brief A search state: a *sorted* subset of the graph's node ids.
/// Sortedness is an invariant of the search (prunings of a sorted set stay
/// sorted), and is what makes `SubsetHash` keys canonical.
using NodeSet = std::vector<int>;

/// \brief Result of an explanation search: the most responsible connected
/// subgraph and its risk score, plus search/scorer diagnostics.
struct ExplanationResult {
  std::vector<int> subgraph_nodes;
  double score = 0.0;
  /// Distinct induced subgraphs evaluated through the GNN (the scorer's
  /// memoized counter — repeats are free; docs/EXPLAIN.md §4).
  int model_evaluations = 0;
  /// Unique subsets whose search reward was computed (diagnostics).
  int subgraphs_scored = 0;
  /// Candidate reward lookups served by the transposition table.
  long long tt_hits = 0;
  /// Raw score requests answered by the scorer's memo.
  long long score_memo_hits = 0;
  /// Rollout waves executed (ceil(iterations / rollout_slots)).
  int waves = 0;
};

/// \brief Shared search options (every knob is documented with its
/// interaction contract in docs/EXPLAIN.md §6).
struct SearchOptions {
  /// Monte Carlo iterations I — the total rollout budget of one search.
  int iterations = 8;
  /// Beam width per level (FexIoT's MCBS; ignored by pure MCTS).
  int beam_width = 4;
  /// Maximum explanation subgraph size ("least node number" N_min of
  /// Algorithm 2: pruning stops when the subgraph reaches this size).
  int max_subgraph_nodes = 5;
  /// Exploration-exploitation balance lambda of Eq. 7.
  double lambda = 0.5;
  /// Kernel SHAP samples K (FexIoT) / Shapley MC samples (SubgraphX).
  int shap_samples = 16;
  /// Rollouts selected per wave (the root-parallel fan-out). This is a
  /// *logical* width — results depend on it but never on FEXIOT_THREADS;
  /// the wave's reward evaluations are what actually spread over the pool.
  int rollout_slots = 4;
  /// Virtual-loss penalty subtracted per in-wave selection of the same
  /// child (sel = Q + lambda*R - virtual_loss * in_wave_picks), steering
  /// concurrent rollouts apart deterministically. 0 disables.
  double virtual_loss = 0.25;
  /// When false, node rewards are recomputed at every visit instead of
  /// being served from the transposition table — the memo-free reference
  /// mode (identical results, since rewards are pure per subset; used by
  /// the oracle test and as the serial bench baseline).
  bool reuse_rewards = true;
};

/// \brief Per-subset statistics of the shared search tree, stored in the
/// transposition table under the subset's FNV hash.
struct SearchNode {
  double reward = 0.0;   ///< immediate reward R (cached when known)
  bool reward_known = false;
  double q_total = 0.0;  ///< backed-up leaf-reward sum
  int visits = 0;

  double Q() const { return visits > 0 ? q_total / visits : 0.0; }
};

/// \brief Hash-keyed MCTS node store shared by the three explainers (the
/// combopt-zero `mcts.cpp` idiom): states reached along different pruning
/// orders collapse into one entry, so reward evaluations and visit
/// statistics are shared across the whole search instead of per path.
/// Keys are `SubsetHash` digests; distinct subsets colliding on a 64-bit
/// FNV hash is vanishingly unlikely at explanation sizes (subsets of
/// <= 50-node graphs) and would only conflate two tree nodes, never crash.
class TranspositionTable {
 public:
  /// Node for \p key, default-constructed on first access.
  SearchNode& At(uint64_t key) { return nodes_[key]; }
  const SearchNode* Find(uint64_t key) const {
    const auto it = nodes_.find(key);
    return it == nodes_.end() ? nullptr : &it->second;
  }
  size_t size() const { return nodes_.size(); }

 private:
  std::unordered_map<uint64_t, SearchNode> nodes_;
};

/// \brief Reward of one subset. The Rng is derived by the search core as a
/// pure function of the search seed and the subset hash, so the reward is
/// a pure function of (seed, subset) — the property every cache in the
/// subsystem rides on. Implementations must not touch shared mutable
/// state: rewards are evaluated from parallel workers.
using RewardFn = std::function<double(const NodeSet& subset, Rng* rng)>;

/// \brief Optional batched reward hook: computes rewards for all \p
/// subsets at once (used by MCTS_GNN to push a whole wave-level of
/// candidates through one block-diagonal `ScoreBatch`). When null, the
/// core parallelizes `RewardFn` over the candidates instead.
using RewardBatchFn = std::function<void(const std::vector<NodeSet>& subsets,
                                         std::vector<double>* rewards)>;

/// \brief Parallel Monte Carlo (beam) tree search over connected
/// subgraphs — the shared core behind ShapMcbs/SubgraphX/MctsGnn
/// (Algorithm 2 skeleton, parallelized per docs/EXPLAIN.md §5).
///
/// Rollouts run in *waves* of `rollout_slots` logical slots. Each wave:
///  1. serial level-synchronous descent planning: every slot draws its
///     candidate prunings from its own counter stream;
///  2. parallel evaluation of the level's distinct unknown rewards over
///     `parallel::For` (or one `RewardBatchFn` call);
///  3. serial selection in slot order: each slot picks the beam candidate
///     maximizing Q + lambda*R - virtual_loss * in-wave picks;
///  4. serial backup of leaf rewards in slot order.
/// All cross-slot interaction is serial and every stochastic draw is
/// counter-derived (`Rng::ForkAt`), so the selected subgraph, score, and
/// every counter are bit-identical for any FEXIOT_THREADS.
///
/// Consumes exactly one draw from \p rng (the search seed), mirroring the
/// corpus generator's stream discipline.
ExplanationResult ParallelSubgraphSearch(const GnnGraphScorer& scorer,
                                         const SearchOptions& options,
                                         const RewardFn& reward,
                                         const RewardBatchFn& reward_batch,
                                         Rng* rng);

}  // namespace fexiot
