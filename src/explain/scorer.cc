#include "explain/scorer.h"

#include <cassert>

namespace fexiot {

uint64_t SubsetHash(const std::vector<int>& nodes) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix_u64 = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffULL;
      h *= 0x100000001b3ULL;  // FNV-1a prime
    }
  };
  mix_u64(static_cast<uint64_t>(nodes.size()));
  for (int v : nodes) mix_u64(static_cast<uint64_t>(static_cast<uint32_t>(v)));
  return h;
}

double GnnGraphScorer::EvaluateUncached(
    const std::vector<int>& active_nodes) const {
  if (active_nodes.empty()) {
    const std::vector<double> zero(
        static_cast<size_t>(model_->config().embedding_dim), 0.0);
    return head_->PredictProba(zero);
  }
  const InteractionGraph sub = graph_->InducedSubgraph(active_nodes);
  const PreparedGraph prepared = PrepareGraph(sub, model_->config());
  const std::vector<double> z = model_->Forward(prepared, nullptr);
  return head_->PredictProba(z);
}

double GnnGraphScorer::Score(const std::vector<int>& active_nodes) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (!memoize_) {
    evaluations_.fetch_add(1, std::memory_order_relaxed);
    return EvaluateUncached(active_nodes);
  }
  const uint64_t key = SubsetHash(active_nodes);
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  const double v = EvaluateUncached(active_nodes);
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    const auto inserted = memo_.emplace(key, v);
    if (inserted.second) {
      evaluations_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Lost a race with an identical computation: same bits, charge the
      // query as a hit so queries == evaluations + memo_hits stays exact.
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return v;
}

void GnnGraphScorer::ScoreBatch(
    const std::vector<std::vector<int>>& node_sets,
    std::vector<double>* scores) const {
  assert(scores != nullptr);
  scores->assign(node_sets.size(), 0.0);
  if (node_sets.empty()) return;
  queries_.fetch_add(static_cast<long long>(node_sets.size()),
                     std::memory_order_relaxed);

  // Resolve memo hits; collect the distinct misses (first occurrence per
  // key; later duplicates are filled from the memo after the commit).
  std::vector<size_t> miss;          // indices into node_sets
  std::vector<size_t> dup;           // unresolved duplicate indices
  std::vector<uint64_t> keys(node_sets.size());
  if (memoize_) {
    for (size_t i = 0; i < node_sets.size(); ++i) {
      keys[i] = SubsetHash(node_sets[i]);
    }
    std::unordered_map<uint64_t, size_t> first;
    std::lock_guard<std::mutex> lock(memo_mu_);
    for (size_t i = 0; i < node_sets.size(); ++i) {
      const auto it = memo_.find(keys[i]);
      if (it != memo_.end()) {
        (*scores)[i] = it->second;
        memo_hits_.fetch_add(1, std::memory_order_relaxed);
      } else if (first.emplace(keys[i], i).second) {
        miss.push_back(i);
      } else {
        dup.push_back(i);
      }
    }
  } else {
    miss.resize(node_sets.size());
    for (size_t i = 0; i < node_sets.size(); ++i) miss[i] = i;
  }
  if (miss.empty()) return;

  // Evaluate the misses. The batched path needs sparse-mode prepared
  // graphs; under a resolved dense propagation mode (or for a lone miss,
  // where stacking buys nothing) fall back to sequential evaluation —
  // both paths are bit-identical per ForwardBatch's contract.
  std::vector<double> vals(miss.size());
  const PropagationMode mode =
      ResolvePropagationMode(model_->config().propagation);
  if (mode == PropagationMode::kDense || miss.size() == 1) {
    for (size_t m = 0; m < miss.size(); ++m) {
      vals[m] = EvaluateUncached(node_sets[miss[m]]);
    }
  } else {
    GnnConfig batch_config = model_->config();
    batch_config.propagation = PropagationMode::kSparse;
    std::vector<PreparedGraph> prepared;
    std::vector<const PreparedGraph*> ptrs;
    std::vector<size_t> batch_slot;  // index into vals per stacked graph
    prepared.reserve(miss.size());
    for (size_t m = 0; m < miss.size(); ++m) {
      const std::vector<int>& nodes = node_sets[miss[m]];
      if (nodes.empty()) {
        vals[m] = EvaluateUncached(nodes);  // zero-embedding base score
        continue;
      }
      prepared.push_back(
          PrepareGraph(graph_->InducedSubgraph(nodes), batch_config));
      batch_slot.push_back(m);
    }
    ptrs.reserve(prepared.size());
    for (const PreparedGraph& p : prepared) ptrs.push_back(&p);
    if (!ptrs.empty()) {
      GraphBatch batch;
      AssembleGraphBatch(ptrs, batch_config, &batch);
      BatchForwardWorkspace ws;
      std::vector<std::vector<double>> embeddings;
      model_->ForwardBatch(batch, &ws, &embeddings);
      for (size_t b = 0; b < embeddings.size(); ++b) {
        vals[batch_slot[b]] = head_->PredictProba(embeddings[b]);
      }
    }
  }

  // Commit: one evaluation per distinct miss, regardless of how the model
  // was invoked (docs/EXPLAIN.md §4 — "one batch = N evaluations").
  if (memoize_) {
    std::lock_guard<std::mutex> lock(memo_mu_);
    for (size_t m = 0; m < miss.size(); ++m) {
      (*scores)[miss[m]] = vals[m];
      const auto inserted = memo_.emplace(keys[miss[m]], vals[m]);
      if (inserted.second) {
        evaluations_.fetch_add(1, std::memory_order_relaxed);
      } else {
        memo_hits_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (size_t i : dup) {
      (*scores)[i] = memo_.at(keys[i]);
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    for (size_t m = 0; m < miss.size(); ++m) (*scores)[miss[m]] = vals[m];
    evaluations_.fetch_add(static_cast<int>(miss.size()),
                           std::memory_order_relaxed);
  }
}

}  // namespace fexiot
