#include "explain/scorer.h"

namespace fexiot {

double GnnGraphScorer::Score(const std::vector<int>& active_nodes) const {
  ++evaluations_;
  if (active_nodes.empty()) {
    const std::vector<double> zero(
        static_cast<size_t>(model_->config().embedding_dim), 0.0);
    return head_->PredictProba(zero);
  }
  const InteractionGraph sub = graph_->InducedSubgraph(active_nodes);
  const PreparedGraph prepared = PrepareGraph(sub, model_->config());
  const std::vector<double> z = model_->Forward(prepared, nullptr);
  return head_->PredictProba(z);
}

}  // namespace fexiot
