#include "explain/shap.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "tensor/ops.h"

namespace fexiot {
namespace {

// std::lgamma writes the process-global `signgam`, which races when
// coalition weights are computed from pool workers; lgamma_r takes the
// sign out parameter explicitly and touches no shared state.
double LgammaLocal(double x) {
  int sign = 0;
  return ::lgamma_r(x, &sign);
}

double LogChoose(int n, int k) {
  return LgammaLocal(n + 1.0) - LgammaLocal(k + 1.0) -
         LgammaLocal(n - k + 1.0);
}

// Shapley kernel weight for coalition size s out of M players.
double KernelWeight(int m, int s) {
  if (s <= 0 || s >= m) return 0.0;  // handled by anchor constraints
  const double log_c = LogChoose(m, s);
  return (m - 1.0) /
         (std::exp(log_c) * static_cast<double>(s) *
          static_cast<double>(m - s));
}

}  // namespace

double KernelShap::SubgraphShap(const GnnGraphScorer& scorer,
                                const std::vector<int>& subgraph_nodes,
                                Rng* rng) const {
  const InteractionGraph& g = scorer.graph();
  // Players: index 0 = the subgraph coalition; 1..m-1 = remaining nodes.
  std::set<int> sub(subgraph_nodes.begin(), subgraph_nodes.end());
  std::vector<int> others;
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (!sub.count(v)) others.push_back(v);
  }
  const int m = 1 + static_cast<int>(others.size());
  if (m == 1) {
    // Whole graph is the player: phi = h(G) - h(empty).
    std::vector<double> v;
    scorer.ScoreBatch({subgraph_nodes, {}}, &v);
    return v[0] - v[1];
  }

  auto player_nodes = [&](const std::vector<int>& coalition) {
    std::vector<int> nodes;
    for (int p : coalition) {
      if (p == 0) {
        nodes.insert(nodes.end(), subgraph_nodes.begin(),
                     subgraph_nodes.end());
      } else {
        nodes.push_back(others[static_cast<size_t>(p - 1)]);
      }
    }
    std::sort(nodes.begin(), nodes.end());
    return nodes;
  };

  std::vector<int> all_players(static_cast<size_t>(m));
  for (int p = 0; p < m; ++p) all_players[static_cast<size_t>(p)] = p;

  // Sample every coalition up front (scoring consumes no randomness, so
  // the draw sequence is identical to per-coalition scoring), then push
  // the empty/full anchors and all masked subgraphs through one batched
  // scorer call — a single block-diagonal forward for the whole game.
  const int k = std::max(4, options_.num_samples);
  std::vector<std::vector<int>> coalitions(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    // Sample coalition size by the kernel distribution (sizes near 1 and
    // m-1 carry most weight), then a uniform subset of that size.
    std::vector<double> size_weights(static_cast<size_t>(m) - 1);
    for (int s = 1; s < m; ++s) {
      // Mass of size s: C(m,s) * kernel(s) ~ (m-1)/(s(m-s)).
      size_weights[static_cast<size_t>(s - 1)] =
          1.0 / (static_cast<double>(s) * static_cast<double>(m - s));
    }
    const int s = 1 + static_cast<int>(rng->Categorical(size_weights));
    std::vector<size_t> chosen = rng->SampleWithoutReplacement(
        static_cast<size_t>(m), static_cast<size_t>(s));
    for (size_t c : chosen) {
      coalitions[static_cast<size_t>(i)].push_back(static_cast<int>(c));
    }
  }
  std::vector<std::vector<int>> sets;
  sets.reserve(static_cast<size_t>(k) + 2);
  sets.push_back({});                          // v_empty
  sets.push_back(player_nodes(all_players));   // v_full
  for (const std::vector<int>& coalition : coalitions) {
    sets.push_back(player_nodes(coalition));
  }
  std::vector<double> values;
  scorer.ScoreBatch(sets, &values);
  const double v_empty = values[0];
  const double v_full = values[1];

  // Design matrix over sampled coalitions; columns = players (intercept is
  // eliminated by regressing y - v_empty on z with the constraint absorbed
  // via the full-coalition anchor, here approximated by adding both
  // anchors with large weight).
  Matrix x(static_cast<size_t>(k) + 2, static_cast<size_t>(m) + 1);
  std::vector<double> y(static_cast<size_t>(k) + 2, 0.0);
  std::vector<double> w(static_cast<size_t>(k) + 2, 0.0);
  for (int i = 0; i < k; ++i) {
    const std::vector<int>& coalition = coalitions[static_cast<size_t>(i)];
    x.At(static_cast<size_t>(i), 0) = 1.0;  // intercept
    for (int p : coalition) {
      x.At(static_cast<size_t>(i), static_cast<size_t>(p) + 1) = 1.0;
    }
    y[static_cast<size_t>(i)] = values[static_cast<size_t>(i) + 2];
    w[static_cast<size_t>(i)] =
        KernelWeight(m, static_cast<int>(coalition.size()));
  }
  // Anchors: empty and full coalitions with dominating weight, enforcing
  // g(0) = v_empty and g(1) = v_full.
  const double anchor_w = 1e6;
  x.At(static_cast<size_t>(k), 0) = 1.0;
  y[static_cast<size_t>(k)] = v_empty;
  w[static_cast<size_t>(k)] = anchor_w;
  x.At(static_cast<size_t>(k) + 1, 0) = 1.0;
  for (int p = 0; p < m; ++p) {
    x.At(static_cast<size_t>(k) + 1, static_cast<size_t>(p) + 1) = 1.0;
  }
  y[static_cast<size_t>(k) + 1] = v_full;
  w[static_cast<size_t>(k) + 1] = anchor_w;

  const std::vector<double> beta = WeightedLeastSquares(x, y, w, 1e-6);
  if (beta.empty()) {
    // Regression failed; fall back to the marginal contribution.
    return scorer.Score(subgraph_nodes) - v_empty;
  }
  return beta[1];  // phi of the subgraph player
}

}  // namespace fexiot
