#include "explain/explainer.h"

#include <algorithm>
#include <set>
#include <vector>

namespace fexiot {

// Reward adapters only — the search itself (waves, transposition table,
// virtual loss, determinism discipline) lives in explain/search.cc. Every
// reward below is a pure function of (rng stream, subset): it touches no
// mutable state beyond its own Rng and the scorer's thread-safe memo, so
// the core may evaluate it from any parallel worker.

ExplanationResult ShapMcbsExplainer::Explain(const GnnGraphScorer& scorer,
                                             Rng* rng) {
  const KernelShap shap(
      KernelShap::Options{options_.shap_samples, /*seed=*/0});
  const RewardFn reward = [&shap, &scorer](const NodeSet& s, Rng* r) {
    return shap.SubgraphShap(scorer, s, r);
  };
  return ParallelSubgraphSearch(scorer, options_, reward, RewardBatchFn{},
                                rng);
}

ExplanationResult SubgraphXExplainer::Explain(const GnnGraphScorer& scorer,
                                              Rng* rng) {
  const InteractionGraph& g = scorer.graph();
  // Shapley value with the independence assumption: average marginal
  // contribution of the subgraph over uniformly sampled context
  // coalitions of the *other* nodes.
  const int samples = std::max(2, options_.shap_samples / 2);
  const RewardFn reward = [&g, &scorer, samples](const NodeSet& s, Rng* r) {
    std::set<int> sub(s.begin(), s.end());
    std::vector<int> others;
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (!sub.count(v)) others.push_back(v);
    }
    // Draw every context up front (scoring consumes no randomness), then
    // push all with/without pairs through one batched scorer call.
    std::vector<std::vector<int>> sets;
    sets.reserve(2 * static_cast<size_t>(samples));
    for (int k = 0; k < samples; ++k) {
      std::vector<int> context;
      for (int v : others) {
        if (r->Bernoulli(0.5)) context.push_back(v);
      }
      std::vector<int> with = context;
      with.insert(with.end(), s.begin(), s.end());
      std::sort(with.begin(), with.end());
      sets.push_back(std::move(with));
      sets.push_back(std::move(context));
    }
    std::vector<double> v;
    scorer.ScoreBatch(sets, &v);
    double total = 0.0;
    for (int k = 0; k < samples; ++k) {
      total += v[2 * static_cast<size_t>(k)] -
               v[2 * static_cast<size_t>(k) + 1];
    }
    return total / samples;
  };
  return ParallelSubgraphSearch(scorer, options_, reward, RewardBatchFn{},
                                rng);
}

ExplanationResult MctsGnnExplainer::Explain(const GnnGraphScorer& scorer,
                                            Rng* rng) {
  const RewardFn reward = [&scorer](const NodeSet& s, Rng* /*rng*/) {
    return scorer.Score(s);
  };
  // The GNN score ignores the reward stream, so whole wave-levels of
  // candidates can run as one block-diagonal forward pass.
  const RewardBatchFn reward_batch = [&scorer](
                                         const std::vector<NodeSet>& sets,
                                         std::vector<double>* vals) {
    scorer.ScoreBatch(sets, vals);
  };
  return ParallelSubgraphSearch(scorer, options_, reward, reward_batch, rng);
}

FidelitySparsity EvaluateExplanation(const GnnGraphScorer& scorer,
                                     const std::vector<int>& subgraph_nodes) {
  FidelitySparsity out;
  const InteractionGraph& g = scorer.graph();
  std::set<int> sub(subgraph_nodes.begin(), subgraph_nodes.end());
  std::vector<int> all, rest;
  for (int v = 0; v < g.num_nodes(); ++v) {
    all.push_back(v);
    if (!sub.count(v)) rest.push_back(v);
  }
  out.fidelity = scorer.Score(all) - scorer.Score(rest);
  out.sparsity =
      1.0 - static_cast<double>(subgraph_nodes.size()) /
                static_cast<double>(std::max(1, g.num_nodes()));
  return out;
}

}  // namespace fexiot
