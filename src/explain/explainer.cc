#include "explain/explainer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

namespace fexiot {
namespace {

using NodeSet = std::vector<int>;  // sorted

std::string KeyOf(const NodeSet& s) {
  std::string k;
  for (int v : s) {
    k += std::to_string(v);
    k += ',';
  }
  return k;
}

/// Per-subgraph search-tree statistics.
struct TreeNode {
  double reward = 0.0;   // immediate reward R (cached)
  bool reward_known = false;
  double q_total = 0.0;  // backed-up reward sum
  int visits = 0;

  double Q() const { return visits > 0 ? q_total / visits : 0.0; }
};

/// All prunings of `s` (drop one node) that stay connected in `g`.
std::vector<NodeSet> ConnectedPrunings(const InteractionGraph& g,
                                       const NodeSet& s) {
  std::vector<NodeSet> out;
  if (s.size() <= 1) return out;
  for (size_t i = 0; i < s.size(); ++i) {
    NodeSet child;
    child.reserve(s.size() - 1);
    for (size_t j = 0; j < s.size(); ++j) {
      if (j != i) child.push_back(s[j]);
    }
    if (g.IsConnectedSubset(child)) out.push_back(std::move(child));
  }
  return out;
}

/// Largest connected component (search root).
NodeSet SearchRoot(const InteractionGraph& g) {
  auto comps = g.ConnectedComponents();
  size_t best = 0;
  for (size_t i = 1; i < comps.size(); ++i) {
    if (comps[i].size() > comps[best].size()) best = i;
  }
  return comps.empty() ? NodeSet{} : comps[best];
}

using RewardFn = std::function<double(const NodeSet&)>;

/// Shared Monte Carlo (beam) tree search used by all three explainers
/// (Algorithm 2 skeleton). Each iteration walks root -> leaf picking the
/// child maximizing Q + lambda * R over a beam of reward-scored children,
/// then backs the leaf reward up the path.
ExplanationResult MonteCarloSearch(const GnnGraphScorer& scorer,
                                   const SearchOptions& options,
                                   const RewardFn& reward, Rng* rng) {
  ExplanationResult result;
  const InteractionGraph& g = scorer.graph();
  const NodeSet root = SearchRoot(g);
  if (root.empty()) return result;

  std::map<std::string, TreeNode> tree;
  auto reward_of = [&](const NodeSet& s) {
    TreeNode& node = tree[KeyOf(s)];
    if (!node.reward_known) {
      node.reward = reward(s);
      node.reward_known = true;
      ++result.subgraphs_scored;
    }
    return node.reward;
  };

  NodeSet best_leaf;
  double best_score = -1e18;
  const size_t target =
      static_cast<size_t>(std::max(1, options.max_subgraph_nodes));

  for (int iter = 0; iter < options.iterations; ++iter) {
    NodeSet s = root;
    std::vector<std::string> path = {KeyOf(s)};
    while (s.size() > target) {
      std::vector<NodeSet> children = ConnectedPrunings(g, s);
      if (children.empty()) break;
      // Beam: score a bounded random sample of children, keep the best
      // `beam_width` by immediate reward.
      rng->Shuffle(&children);
      const size_t candidates =
          std::min(children.size(),
                   static_cast<size_t>(std::max(1, 2 * options.beam_width)));
      children.resize(candidates);
      std::vector<std::pair<double, size_t>> scored;
      for (size_t i = 0; i < children.size(); ++i) {
        scored.emplace_back(reward_of(children[i]), i);
      }
      std::sort(scored.begin(), scored.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      const size_t beam = std::min(
          scored.size(), static_cast<size_t>(std::max(1, options.beam_width)));
      // Eq. 7 selection among the beam.
      double best_sel = -1e18;
      size_t pick = scored[0].second;
      for (size_t b = 0; b < beam; ++b) {
        const NodeSet& child = children[scored[b].second];
        const TreeNode& node = tree[KeyOf(child)];
        const double sel = node.Q() + options.lambda * node.reward;
        if (sel > best_sel) {
          best_sel = sel;
          pick = scored[b].second;
        }
      }
      s = children[pick];
      path.push_back(KeyOf(s));
    }
    const double leaf_reward = reward_of(s);
    if (s.size() <= target && leaf_reward > best_score) {
      best_score = leaf_reward;
      best_leaf = s;
    }
    for (const auto& key : path) {
      TreeNode& node = tree[key];
      ++node.visits;
      node.q_total += leaf_reward;
    }
  }
  if (best_leaf.empty()) best_leaf = root;  // tiny graphs
  result.subgraph_nodes = best_leaf;
  result.score = best_score > -1e17 ? best_score : reward_of(best_leaf);
  result.model_evaluations = scorer.evaluations();
  return result;
}

}  // namespace

ExplanationResult ShapMcbsExplainer::Explain(const GnnGraphScorer& scorer,
                                             Rng* rng) {
  KernelShap shap(KernelShap::Options{options_.shap_samples, rng->NextU64()});
  const RewardFn reward = [&](const NodeSet& s) {
    return shap.SubgraphShap(scorer, s, rng);
  };
  return MonteCarloSearch(scorer, options_, reward, rng);
}

ExplanationResult SubgraphXExplainer::Explain(const GnnGraphScorer& scorer,
                                              Rng* rng) {
  const InteractionGraph& g = scorer.graph();
  // Shapley value with the independence assumption: average marginal
  // contribution of the subgraph over uniformly sampled context
  // coalitions of the *other* nodes.
  const RewardFn reward = [&](const NodeSet& s) {
    std::set<int> sub(s.begin(), s.end());
    std::vector<int> others;
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (!sub.count(v)) others.push_back(v);
    }
    double total = 0.0;
    const int samples = std::max(2, options_.shap_samples / 2);
    for (int k = 0; k < samples; ++k) {
      std::vector<int> context;
      for (int v : others) {
        if (rng->Bernoulli(0.5)) context.push_back(v);
      }
      std::vector<int> with = context;
      with.insert(with.end(), s.begin(), s.end());
      std::sort(with.begin(), with.end());
      total += scorer.Score(with) - scorer.Score(context);
    }
    return total / samples;
  };
  return MonteCarloSearch(scorer, options_, reward, rng);
}

ExplanationResult MctsGnnExplainer::Explain(const GnnGraphScorer& scorer,
                                            Rng* rng) {
  const RewardFn reward = [&](const NodeSet& s) { return scorer.Score(s); };
  return MonteCarloSearch(scorer, options_, reward, rng);
}

FidelitySparsity EvaluateExplanation(const GnnGraphScorer& scorer,
                                     const std::vector<int>& subgraph_nodes) {
  FidelitySparsity out;
  const InteractionGraph& g = scorer.graph();
  std::set<int> sub(subgraph_nodes.begin(), subgraph_nodes.end());
  std::vector<int> all, rest;
  for (int v = 0; v < g.num_nodes(); ++v) {
    all.push_back(v);
    if (!sub.count(v)) rest.push_back(v);
  }
  out.fidelity = scorer.Score(all) - scorer.Score(rest);
  out.sparsity =
      1.0 - static_cast<double>(subgraph_nodes.size()) /
                static_cast<double>(std::max(1, g.num_nodes()));
  return out;
}

}  // namespace fexiot
