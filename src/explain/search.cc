#include "explain/search.h"

#include <algorithm>
#include <cassert>

#include "common/parallel.h"

namespace fexiot {
namespace {

/// All prunings of `s` (drop one node) that stay connected in `g`.
/// Prunings of a sorted set are sorted, preserving the NodeSet invariant.
std::vector<NodeSet> ConnectedPrunings(const InteractionGraph& g,
                                       const NodeSet& s) {
  std::vector<NodeSet> out;
  if (s.size() <= 1) return out;
  for (size_t i = 0; i < s.size(); ++i) {
    NodeSet child;
    child.reserve(s.size() - 1);
    for (size_t j = 0; j < s.size(); ++j) {
      if (j != i) child.push_back(s[j]);
    }
    if (g.IsConnectedSubset(child)) out.push_back(std::move(child));
  }
  return out;
}

/// Largest connected component (search root).
NodeSet SearchRoot(const InteractionGraph& g) {
  auto comps = g.ConnectedComponents();
  size_t best = 0;
  for (size_t i = 1; i < comps.size(); ++i) {
    if (comps[i].size() > comps[best].size()) best = i;
  }
  NodeSet root = comps.empty() ? NodeSet{} : comps[best];
  std::sort(root.begin(), root.end());
  return root;
}

/// One logical rollout slot of the current wave.
struct Slot {
  NodeSet s;                   ///< current state
  std::vector<uint64_t> path;  ///< visited keys (root first), for backup
  bool active = false;         ///< still descending
  Rng rng;                     ///< selection stream (counter-derived)
  // Per-level candidate scratch.
  std::vector<NodeSet> cands;
  std::vector<uint64_t> cand_keys;
  std::vector<double> cand_rewards;
};

/// One pending reward evaluation.
struct EvalJob {
  const NodeSet* set;
  uint64_t key;
  double* out;
};

}  // namespace

ExplanationResult ParallelSubgraphSearch(const GnnGraphScorer& scorer,
                                         const SearchOptions& options,
                                         const RewardFn& reward,
                                         const RewardBatchFn& reward_batch,
                                         Rng* rng) {
  ExplanationResult result;
  const InteractionGraph& g = scorer.graph();
  const NodeSet root = SearchRoot(g);
  if (root.empty()) return result;
  const uint64_t root_key = SubsetHash(root);

  TranspositionTable tt;

  // Stream discipline (docs/EXPLAIN.md §5): exactly one draw from the
  // caller's rng seeds the search; everything below is counter-derived.
  // Slot r selects with select_root.ForkAt(r); the reward of subset s is
  // evaluated with reward_root.ForkAt(SubsetHash(s)) — a pure function of
  // (seed, subset), so any worker computing it produces identical bits.
  Rng base(rng->NextU64());
  const Rng select_root = base.ForkAt(1);
  const Rng reward_root = base.ForkAt(2);

  const size_t target =
      static_cast<size_t>(std::max(1, options.max_subgraph_nodes));
  const int total_rollouts = std::max(0, options.iterations);
  const int wave_width = std::max(1, options.rollout_slots);
  const size_t max_cands =
      static_cast<size_t>(std::max(1, 2 * options.beam_width));
  const size_t beam_width =
      static_cast<size_t>(std::max(1, options.beam_width));

  // Evaluates pending rewards — in parallel over the pool, or through the
  // caller's batched hook. Job outputs are disjoint, so the fan-out is
  // race-free; all bookkeeping happens serially around it.
  auto Evaluate = [&](const std::vector<EvalJob>& jobs) {
    if (jobs.empty()) return;
    if (reward_batch) {
      std::vector<NodeSet> sets;
      sets.reserve(jobs.size());
      for (const EvalJob& j : jobs) sets.push_back(*j.set);
      std::vector<double> vals;
      reward_batch(sets, &vals);
      assert(vals.size() == jobs.size());
      for (size_t i = 0; i < jobs.size(); ++i) *jobs[i].out = vals[i];
    } else {
      parallel::For(jobs.size(), [&](size_t i) {
        Rng r = reward_root.ForkAt(jobs[i].key);
        *jobs[i].out = reward(*jobs[i].set, &r);
      });
    }
  };

  // Gathers the jobs for (set, key, out) triples: transposition hits are
  // resolved immediately, in-level duplicates are deferred copies, and
  // only distinct unknown subsets are evaluated. In memo-free reference
  // mode every triple becomes a job (rewards recomputed per visit).
  struct PendingLevel {
    std::vector<EvalJob> jobs;
    std::vector<std::pair<uint64_t, double*>> copies;
    std::unordered_map<uint64_t, bool> pending;
  };
  auto Gather = [&](PendingLevel* lvl, const NodeSet* set, uint64_t key,
                    double* out) {
    if (!options.reuse_rewards) {
      lvl->jobs.push_back({set, key, out});
      return;
    }
    const SearchNode* node = tt.Find(key);
    if (node != nullptr && node->reward_known) {
      *out = node->reward;
      ++result.tt_hits;
    } else if (lvl->pending.emplace(key, true).second) {
      lvl->jobs.push_back({set, key, out});
    } else {
      lvl->copies.emplace_back(key, out);
    }
  };
  auto Commit = [&](const PendingLevel& lvl) {
    if (options.reuse_rewards) {
      for (const EvalJob& j : lvl.jobs) {
        SearchNode& node = tt.At(j.key);
        if (!node.reward_known) {
          node.reward = *j.out;
          node.reward_known = true;
          ++result.subgraphs_scored;
        }
      }
      for (const auto& c : lvl.copies) {
        const SearchNode* node = tt.Find(c.first);
        assert(node != nullptr && node->reward_known);
        *c.second = node->reward;
        ++result.tt_hits;
      }
    } else {
      result.subgraphs_scored += static_cast<int>(lvl.jobs.size());
    }
  };

  NodeSet best_leaf;
  double best_score = -1e18;

  for (int wave_start = 0; wave_start < total_rollouts;
       wave_start += wave_width) {
    const int wave_n = std::min(wave_width, total_rollouts - wave_start);
    ++result.waves;
    std::vector<Slot> slots(static_cast<size_t>(wave_n));
    for (int w = 0; w < wave_n; ++w) {
      Slot& slot = slots[static_cast<size_t>(w)];
      slot.s = root;
      slot.path = {root_key};
      slot.rng = select_root.ForkAt(static_cast<uint64_t>(wave_start + w));
      slot.active = root.size() > target;
    }
    // In-wave virtual-loss counts: picks of the same child by earlier
    // slots penalize later slots' selection, spreading the wave across
    // the tree deterministically.
    std::unordered_map<uint64_t, int> wave_picks;

    // Level-synchronous descent: all active slots are always at the same
    // subset size (each level removes exactly one node).
    bool any_active = false;
    for (const Slot& slot : slots) any_active |= slot.active;
    while (any_active) {
      // Serial candidate generation (consumes each slot's own stream).
      for (Slot& slot : slots) {
        if (!slot.active) continue;
        slot.cands = ConnectedPrunings(g, slot.s);
        if (slot.cands.empty()) {
          slot.active = false;  // stuck above target: leaf at current s
          continue;
        }
        slot.rng.Shuffle(&slot.cands);
        if (slot.cands.size() > max_cands) slot.cands.resize(max_cands);
        slot.cand_keys.resize(slot.cands.size());
        slot.cand_rewards.assign(slot.cands.size(), 0.0);
        for (size_t i = 0; i < slot.cands.size(); ++i) {
          slot.cand_keys[i] = SubsetHash(slot.cands[i]);
        }
      }
      // Parallel evaluation of the level's distinct unknown rewards.
      PendingLevel lvl;
      for (Slot& slot : slots) {
        if (!slot.active) continue;
        for (size_t i = 0; i < slot.cands.size(); ++i) {
          Gather(&lvl, &slot.cands[i], slot.cand_keys[i],
                 &slot.cand_rewards[i]);
        }
      }
      Evaluate(lvl.jobs);
      Commit(lvl);
      // Serial selection in slot order (Eq. 7 over the beam, with the
      // virtual-loss diversification term).
      for (Slot& slot : slots) {
        if (!slot.active) continue;
        std::vector<size_t> order(slot.cands.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          if (slot.cand_rewards[a] != slot.cand_rewards[b]) {
            return slot.cand_rewards[a] > slot.cand_rewards[b];
          }
          return a < b;  // seeded tie-break: the slot's shuffle order
        });
        const size_t beam = std::min(order.size(), beam_width);
        double best_sel = -1e18;
        size_t pick = order[0];
        for (size_t b = 0; b < beam; ++b) {
          const size_t idx = order[b];
          const uint64_t key = slot.cand_keys[idx];
          const SearchNode* node = tt.Find(key);
          const double q = node != nullptr ? node->Q() : 0.0;
          const auto picks_it = wave_picks.find(key);
          const int picks = picks_it == wave_picks.end() ? 0
                                                         : picks_it->second;
          const double sel = q + options.lambda * slot.cand_rewards[idx] -
                             options.virtual_loss * picks;
          if (sel > best_sel) {
            best_sel = sel;
            pick = idx;
          }
        }
        ++wave_picks[slot.cand_keys[pick]];
        slot.path.push_back(slot.cand_keys[pick]);
        slot.s = std::move(slot.cands[pick]);
        if (slot.s.size() <= target) slot.active = false;
      }
      any_active = false;
      for (const Slot& slot : slots) any_active |= slot.active;
    }

    // Leaf rewards (many slots may share a leaf; evaluated once).
    std::vector<double> leaf_rewards(static_cast<size_t>(wave_n), 0.0);
    {
      PendingLevel lvl;
      for (int w = 0; w < wave_n; ++w) {
        const Slot& slot = slots[static_cast<size_t>(w)];
        Gather(&lvl, &slot.s, slot.path.back(),
               &leaf_rewards[static_cast<size_t>(w)]);
      }
      Evaluate(lvl.jobs);
      Commit(lvl);
    }

    // Best tracking + backup, serially in slot order (first slot wins
    // ties, which is deterministic because slot order is).
    for (int w = 0; w < wave_n; ++w) {
      const Slot& slot = slots[static_cast<size_t>(w)];
      const double leaf_reward = leaf_rewards[static_cast<size_t>(w)];
      if (slot.s.size() <= target && leaf_reward > best_score) {
        best_score = leaf_reward;
        best_leaf = slot.s;
      }
      for (uint64_t key : slot.path) {
        SearchNode& node = tt.At(key);
        ++node.visits;
        node.q_total += leaf_reward;
      }
    }
  }

  if (best_leaf.empty()) best_leaf = root;  // tiny graphs / zero budget
  result.subgraph_nodes = best_leaf;
  if (best_score > -1e17) {
    result.score = best_score;
  } else {
    const uint64_t key = SubsetHash(best_leaf);
    const SearchNode* node =
        options.reuse_rewards ? tt.Find(key) : nullptr;
    if (node != nullptr && node->reward_known) {
      result.score = node->reward;
      ++result.tt_hits;
    } else {
      Rng r = reward_root.ForkAt(key);
      result.score = reward(best_leaf, &r);
      ++result.subgraphs_scored;
      if (options.reuse_rewards) {
        SearchNode& fresh = tt.At(key);
        fresh.reward = result.score;
        fresh.reward_known = true;
      }
    }
  }
  result.model_evaluations = scorer.evaluations();
  result.score_memo_hits = scorer.memo_hits();
  return result;
}

}  // namespace fexiot
