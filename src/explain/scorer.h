#pragma once

#include <functional>
#include <vector>

#include "gnn/gnn_model.h"
#include "graph/interaction_graph.h"
#include "ml/linear_model.h"

namespace fexiot {

/// \brief Black-box scorer h(.) used by the explanation methods: the
/// probability that the graph restricted to \p active_nodes is vulnerable.
/// An empty node set scores the model's base prediction (zero embedding).
using GraphScoreFn =
    std::function<double(const std::vector<int>& active_nodes)>;

/// \brief Scorer backed by a trained GNN + linear head (the deployed
/// detection model of Section III-C). Masking = evaluating the induced
/// subgraph.
class GnnGraphScorer {
 public:
  GnnGraphScorer(const GnnModel* model, const SgdClassifier* head,
                 const InteractionGraph* graph)
      : model_(model), head_(head), graph_(graph) {}

  /// h(induced subgraph on active_nodes); counts model evaluations.
  double Score(const std::vector<int>& active_nodes) const;

  /// Number of model evaluations performed so far.
  int evaluations() const { return evaluations_; }

  const InteractionGraph& graph() const { return *graph_; }

  /// Bindable closure for the explainers.
  GraphScoreFn AsFn() const {
    return [this](const std::vector<int>& nodes) { return Score(nodes); };
  }

 private:
  const GnnModel* model_;
  const SgdClassifier* head_;
  const InteractionGraph* graph_;
  mutable int evaluations_ = 0;
};

}  // namespace fexiot
