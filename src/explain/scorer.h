#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "gnn/gnn_model.h"
#include "graph/interaction_graph.h"
#include "ml/linear_model.h"

namespace fexiot {

/// \brief Order-sensitive 64-bit FNV-1a hash of a node subset (length,
/// then each id). The explanation subsystem keys every subset-indexed
/// store off this digest — the scorer's score memo and the search core's
/// transposition table — so a subset hashes identically no matter which
/// component computes it. Callers pass *sorted* subsets everywhere in the
/// search (a `NodeSet` is sorted by construction), which is what makes the
/// memo effective; an unsorted permutation hashes differently and is
/// treated as a distinct query, which is also the correct behaviour for
/// bit-exactness (induced-subgraph node order affects accumulation order).
uint64_t SubsetHash(const std::vector<int>& nodes);

/// \brief Black-box scorer h(.) used by the explanation methods: the
/// probability that the graph restricted to \p active_nodes is vulnerable.
/// An empty node set scores the model's base prediction (zero embedding).
using GraphScoreFn =
    std::function<double(const std::vector<int>& active_nodes)>;

/// \brief Scorer backed by a trained GNN + linear head (the deployed
/// detection model of Section III-C). Masking = evaluating the induced
/// subgraph.
///
/// ## Memoization & counting semantics (docs/EXPLAIN.md §4)
///
/// Scores are *pure*: a subset's score depends only on the (model, head,
/// graph) triple, never on evaluation order or thread schedule. The scorer
/// exploits that with a subset-hash memo shared by `Score` and
/// `ScoreBatch`, so repeated subgraph queries — SHAP anchor coalitions,
/// fidelity evaluations of already-searched subsets — never re-run the
/// model. The memo is guarded by a mutex and safe to hit from parallel
/// rollouts; racing first-queries of the same subset may both run the
/// model, but compute identical bits and are counted once.
///
/// Counters (all atomic, safe to read mid-search):
///  - `evaluations()` — distinct subsets evaluated through the model. One
///    batch of N distinct misses = N evaluations (batching changes how the
///    model is invoked, not how often a subgraph is charged). With the
///    memo disabled (`set_memoize(false)`), every query is charged.
///    Because the *set* of queried subsets in a deterministic search is
///    schedule-independent, this counter is bit-identical across thread
///    counts even though increment timing is not.
///  - `queries()` — total score requests (memo hits included).
///  - `memo_hits()` — requests served without a new model evaluation;
///    maintained so that queries() == evaluations() + memo_hits() holds
///    exactly, including under racing duplicate computations.
class GnnGraphScorer {
 public:
  GnnGraphScorer(const GnnModel* model, const SgdClassifier* head,
                 const InteractionGraph* graph)
      : model_(model), head_(head), graph_(graph) {}

  /// h(induced subgraph on active_nodes), memoized by subset hash.
  double Score(const std::vector<int>& active_nodes) const;

  /// \brief Scores many subsets in one call. Memo hits are resolved first;
  /// the distinct misses are assembled into one block-diagonal
  /// `GraphBatch` and run through `GnnModel::ForwardBatch` — bit-identical
  /// to sequential `Score` calls (ForwardBatch preserves each graph's
  /// accumulation order). Ragged input is fine: empty subsets take the
  /// zero-embedding base score, single-element batches and the resolved
  /// dense propagation mode fall back to the sequential path (the dense
  /// engine has no block-diagonal kernel), and duplicate subsets within
  /// the batch are evaluated once.
  void ScoreBatch(const std::vector<std::vector<int>>& node_sets,
                  std::vector<double>* scores) const;

  /// Distinct subsets evaluated through the model so far (see class doc).
  int evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  /// Total score requests (memo hits included).
  long long queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  /// Requests served from the memo (queries == evaluations + memo_hits).
  long long memo_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }

  /// \brief Disables (or re-enables) the score memo. With the memo off,
  /// every query runs the model and is counted — the memo-free reference
  /// mode used by the transposition-table oracle test and the serial
  /// baseline of `bench_fig8_explanations`. Not thread-safe against
  /// concurrent scoring; flip it between searches only.
  void set_memoize(bool on) { memoize_ = on; }
  bool memoize() const { return memoize_; }

  const InteractionGraph& graph() const { return *graph_; }

  /// Bindable closure for the explainers.
  GraphScoreFn AsFn() const {
    return [this](const std::vector<int>& nodes) { return Score(nodes); };
  }

 private:
  /// One uncached evaluation: induce, prepare, forward, head.
  double EvaluateUncached(const std::vector<int>& active_nodes) const;

  const GnnModel* model_;
  const SgdClassifier* head_;
  const InteractionGraph* graph_;
  bool memoize_ = true;
  mutable std::atomic<int> evaluations_{0};
  mutable std::atomic<long long> queries_{0};
  mutable std::atomic<long long> memo_hits_{0};
  mutable std::mutex memo_mu_;
  mutable std::unordered_map<uint64_t, double> memo_;
};

}  // namespace fexiot
