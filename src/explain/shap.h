#pragma once

#include <vector>

#include "common/rng.h"
#include "explain/scorer.h"

namespace fexiot {

/// \brief Kernel SHAP estimate of a subgraph's contribution (Eqs. 5-6).
///
/// The cooperative game treats the candidate subgraph G_sub as ONE player
/// and every remaining node as an individual player. K random coalitions
/// z' are drawn, each evaluated by the black-box scorer on the union of
/// the active players' nodes, and a weighted linear regression with the
/// Shapley kernel weights
///     w(z') = (M - 1) / (C(M,|z'|) |z'| (M - |z'|))
/// recovers the additive explanation model g(z') = phi0 + sum_i phi_i z'_i.
/// The returned value is phi of the subgraph player, which (unlike the
/// independence-assuming Shapley sampling of SubgraphX) accounts for the
/// dependence among node players through the joint regression.
class KernelShap {
 public:
  struct Options {
    /// Coalition samples K (Algorithm 2's "kernel SHAP samples").
    int num_samples = 24;
    uint64_t seed = 61;
  };

  explicit KernelShap(Options options) : options_(options) {}

  /// \brief SHAP value of the player formed by \p subgraph_nodes within
  /// the full node set of \p scorer's graph.
  double SubgraphShap(const GnnGraphScorer& scorer,
                      const std::vector<int>& subgraph_nodes, Rng* rng) const;

 private:
  Options options_;
};

}  // namespace fexiot
