#pragma once

#include <memory>
#include <optional>

#include "baselines/testbed.h"
#include "explain/explainer.h"
#include "federated/fl_simulator.h"
#include "gnn/trainer.h"
#include "graph/corpus.h"
#include "graph/fusion.h"
#include "ml/mad.h"

namespace fexiot {

/// \brief End-to-end FexIoT pipeline configuration.
struct FexIotConfig {
  GnnConfig gnn;
  TrainConfig train;
  SearchOptions explain;
  MadDriftDetector::Options drift;
  uint64_t seed = 71;
};

/// \brief The FexIoT system facade (one client's view).
///
/// Wires together the paper's pipeline: cross-modality data fusion (event
/// logs + app descriptions -> online interaction graphs), the contrastive
/// GNN representation (trained locally here, or federally via
/// FederatedSimulator and adopted), the local SGDClassifier detection
/// head, MAD drift filtering, and SHAP-guided Monte Carlo beam search
/// explanation.
///
/// Typical use:
/// \code
///   FexIoT fexiot(FexIotConfig{});
///   fexiot.TrainLocal(train_graphs);           // or AdoptModel(...)
///   auto verdict = fexiot.Analyze(graph);      // detect + drift + explain
/// \endcode
class FexIoT {
 public:
  explicit FexIoT(FexIotConfig config);

  /// \brief Trains the GNN + head + drift detector on local graphs.
  Status TrainLocal(const GraphDataset& train);

  /// \brief Installs an externally (federally) trained GNN, then fits the
  /// local head and drift statistics on local graphs.
  Status AdoptModel(const GnnModel& model, const GraphDataset& local);

  /// \brief Fuses a raw event log with a home's deployed rules into an
  /// online interaction graph (cleans the log first).
  InteractionGraph Fuse(const Home& home, const EventLog& raw_log) const;

  /// Probability the interaction graph is vulnerable.
  double PredictProba(const InteractionGraph& g) const;
  /// Binary verdict (1 = vulnerable).
  int Predict(const InteractionGraph& g) const;
  /// MAD drift score (Section III-B3); > threshold = drifting sample.
  double DriftScore(const InteractionGraph& g) const;
  bool IsDrifting(const InteractionGraph& g) const;

  /// \brief Explanation: the highest-risk connected subgraph (Alg. 2).
  ExplanationResult Explain(const InteractionGraph& g) const;

  /// \brief Full analysis verdict.
  struct Verdict {
    int label = 0;
    double probability = 0.0;
    bool drifting = false;
    double drift_score = 0.0;
    /// Present when label == 1.
    std::optional<ExplanationResult> explanation;
    /// Human-readable rendering of the explanation subgraph.
    std::string explanation_text;
  };
  Verdict Analyze(const InteractionGraph& g) const;

  /// Graph embedding (for drift/cluster analyses).
  std::vector<double> Embed(const InteractionGraph& g) const;

  GnnModel* model() { return model_.get(); }
  const SgdClassifier& head() const { return head_; }
  bool trained() const { return trained_; }

 private:
  Status FitHeadAndDrift(const GraphDataset& local);

  FexIotConfig config_;
  std::unique_ptr<GnnModel> model_;
  SgdClassifier head_;
  MadDriftDetector drift_;
  mutable Rng rng_;
  bool trained_ = false;
};

/// \brief Adapter running the full FexIoT pipeline as a Table II
/// SystemDetector over testbed samples.
class FexIotSystemDetector : public SystemDetector {
 public:
  explicit FexIotSystemDetector(FexIotConfig config)
      : pipeline_(std::move(config)) {}

  void Fit(const std::vector<TestbedSample>& train) override;
  int Predict(const TestbedSample& sample) const override;
  const char* Name() const override { return "FexIoT"; }

  FexIoT* pipeline() { return &pipeline_; }

 private:
  FexIoT pipeline_;
};

}  // namespace fexiot
