#pragma once

#include <vector>

#include "baselines/testbed.h"
#include "common/rng.h"
#include "graph/fusion.h"
#include "smarthome/attacks.h"
#include "smarthome/home.h"

namespace fexiot {

/// \brief Options for generating the Table II testbed corpus: ONE
/// simulated home (as in the paper's one-week volunteer deployment) runs
/// its rules over many time windows; each window becomes one sample, and
/// half the windows are tampered with one of the five HAWatcher attack
/// classes before cleaning + fusion.
struct TestbedOptions {
  int num_samples = 600;       ///< paper: 600 online graphs
  double attacked_fraction = 0.5;  ///< paper: 300 vulnerable
  int rules_per_home = 14;
  double window_hours = 3.0;   ///< simulated duration per sample window
  double attack_intensity = 0.45;
  std::vector<Platform> platforms = {Platform::kSmartThings,
                                     Platform::kIfttt};
};

/// \brief Generates testbed samples (cleaned log + fused online graph +
/// ground truth) from one chained-rule home.
std::vector<TestbedSample> GenerateTestbed(const TestbedOptions& options,
                                           Rng* rng);

/// \brief The home used by GenerateTestbed for a given options/seed (for
/// inspection and examples).
Home BuildTestbedHome(const TestbedOptions& options, Rng* rng);

}  // namespace fexiot
