#include "core/fexiot.h"

#include <sstream>

#include "graph/vuln_checker.h"

namespace fexiot {

FexIoT::FexIoT(FexIotConfig config)
    : config_(std::move(config)),
      model_(std::make_unique<GnnModel>(config_.gnn)),
      drift_(config_.drift),
      rng_(config_.seed) {}

Status FexIoT::TrainLocal(const GraphDataset& train) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  const std::vector<PreparedGraph> prepared =
      PrepareDataset(train, config_.gnn);
  GnnTrainer trainer(model_.get(), config_.train);
  trainer.Train(prepared, &rng_);
  return FitHeadAndDrift(train);
}

Status FexIoT::AdoptModel(const GnnModel& model, const GraphDataset& local) {
  *model_ = model;
  return FitHeadAndDrift(local);
}

Status FexIoT::FitHeadAndDrift(const GraphDataset& local) {
  if (local.empty()) return Status::InvalidArgument("empty local set");
  const std::vector<PreparedGraph> prepared =
      PrepareDataset(local, config_.gnn);
  GnnTrainer trainer(model_.get(), config_.train);
  const Matrix emb = trainer.Embed(prepared);
  const std::vector<int> labels = local.Labels();
  FEXIOT_RETURN_NOT_OK(head_.Fit(emb, labels));
  drift_.Fit(emb, labels);
  trained_ = true;
  return Status::OK();
}

InteractionGraph FexIoT::Fuse(const Home& home,
                              const EventLog& raw_log) const {
  const EventLog cleaned = raw_log.Cleaned();
  OnlineGraphBuilder builder(home);
  InteractionGraph g = builder.Build(cleaned);
  // Label from the checker (internal vulnerabilities only; external attack
  // labels come from ground truth the caller holds).
  if (VulnerabilityChecker::IsVulnerable(g)) {
    g.set_label(1);
    const auto findings = VulnerabilityChecker::Check(g);
    if (!findings.empty()) {
      g.set_vulnerability(findings.front().type);
      g.set_witness(findings.front().witness_nodes);
    }
  }
  return g;
}

std::vector<double> FexIoT::Embed(const InteractionGraph& g) const {
  const PreparedGraph prepared = PrepareGraph(g, config_.gnn);
  return model_->Forward(prepared, nullptr);
}

double FexIoT::PredictProba(const InteractionGraph& g) const {
  if (g.num_nodes() == 0) return 0.0;
  return head_.PredictProba(Embed(g));
}

int FexIoT::Predict(const InteractionGraph& g) const {
  return PredictProba(g) >= 0.5 ? 1 : 0;
}

double FexIoT::DriftScore(const InteractionGraph& g) const {
  return drift_.Score(Embed(g));
}

bool FexIoT::IsDrifting(const InteractionGraph& g) const {
  return drift_.IsDrifting(Embed(g));
}

ExplanationResult FexIoT::Explain(const InteractionGraph& g) const {
  GnnGraphScorer scorer(model_.get(), &head_, &g);
  ShapMcbsExplainer explainer(config_.explain);
  return explainer.Explain(scorer, &rng_);
}

FexIoT::Verdict FexIoT::Analyze(const InteractionGraph& g) const {
  Verdict v;
  v.probability = PredictProba(g);
  v.label = v.probability >= 0.5 ? 1 : 0;
  v.drift_score = DriftScore(g);
  v.drifting = v.drift_score > config_.drift.threshold;
  if (v.label == 1 && g.num_nodes() > 1) {
    v.explanation = Explain(g);
    std::ostringstream os;
    os << "Highest-risk interaction chain (score "
       << v.explanation->score << "):\n";
    for (int node : v.explanation->subgraph_nodes) {
      os << "  [" << node << "] "
         << PlatformName(g.node(node).rule.platform) << ": "
         << g.node(node).rule.description << "\n";
    }
    v.explanation_text = os.str();
  }
  return v;
}

void FexIotSystemDetector::Fit(const std::vector<TestbedSample>& train) {
  GraphDataset data;
  for (const auto& s : train) {
    InteractionGraph g = s.graph;
    g.set_label(s.label);
    if (g.num_nodes() > 0) data.Add(std::move(g));
  }
  const Status st = pipeline_.TrainLocal(data);
  (void)st;
}

int FexIotSystemDetector::Predict(const TestbedSample& sample) const {
  if (sample.graph.num_nodes() == 0) {
    // A log so tampered that no rule firing could be fused is itself
    // suspicious (event-loss attacks).
    return 1;
  }
  // Full pipeline: the supervised head plus the MAD drift filter — a
  // sample outside the training manifold is flagged for inspection
  // (Section III-B3), which is how novel tampering patterns surface.
  if (pipeline_.Predict(sample.graph) == 1) return 1;
  return pipeline_.IsDrifting(sample.graph) ? 1 : 0;
}

}  // namespace fexiot
