#include "core/testbed.h"

#include "graph/vuln_checker.h"

namespace fexiot {

namespace {

// Offline interaction graph over a home's full rule set.
InteractionGraph HomeRuleGraph(const Home& home) {
  InteractionGraph g;
  for (const auto& rule : home.rules) {
    GraphNode node;
    node.rule = rule;
    g.AddNode(std::move(node));
  }
  for (int u = 0; u < g.num_nodes(); ++u) {
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (u != v && ActionTriggersRule(g.node(u).rule, g.node(v).rule)) {
        g.AddEdge(u, v);
      }
    }
  }
  return g;
}

}  // namespace

Home BuildTestbedHome(const TestbedOptions& options, Rng* rng) {
  // The deployed home must be free of *internal* vulnerabilities so that
  // window labels reflect the injected attacks (the paper's volunteer
  // house runs vetted rules). Offending rules are neutralized by swapping
  // their actions for a phone notification.
  Home home;
  // Prefer whole-home rebuilds (keeps chains intact); fall back to
  // neutralizing the offending rule.
  for (int rebuild = 0; rebuild < 15; ++rebuild) {
    home = BuildChainedHome(options.rules_per_home, options.platforms, rng);
    if (VulnerabilityChecker::Check(HomeRuleGraph(home)).empty()) {
      return home;
    }
  }
  for (int attempt = 0; attempt < 50 && home.rules.size() > 4; ++attempt) {
    const auto findings = VulnerabilityChecker::Check(HomeRuleGraph(home));
    if (findings.empty()) break;
    const int victim = findings.front().witness_nodes[rng->UniformInt(
        findings.front().witness_nodes.size())];
    home.rules.erase(home.rules.begin() + victim);
  }
  return home;
}

std::vector<TestbedSample> GenerateTestbed(const TestbedOptions& options,
                                           Rng* rng) {
  std::vector<TestbedSample> out;
  out.reserve(static_cast<size_t>(options.num_samples));
  const int num_attacked = static_cast<int>(
      options.attacked_fraction * options.num_samples + 0.5);

  // One home for the whole testbed (the paper: one volunteer house).
  const Home home = BuildTestbedHome(options, rng);
  OnlineGraphBuilder builder(home);

  for (int i = 0; i < options.num_samples; ++i) {
    SimulationConfig sim_config;
    sim_config.duration_seconds = options.window_hours * 3600.0;
    sim_config.exogenous_mean_gap = 120.0;
    HomeSimulator simulator(home, sim_config, rng);
    EventLog raw = simulator.Run();

    TestbedSample sample;
    if (i < num_attacked) {
      const auto attack = static_cast<AttackType>(i % kNumAttackTypes);
      AttackInjector injector(home, rng);
      AttackResult attacked =
          injector.Inject(raw, attack, options.attack_intensity);
      raw = std::move(attacked.log);
      sample.attacked = true;
      sample.attack = attack;
    }

    sample.log = raw.Cleaned();
    sample.graph = builder.Build(sample.log);
    // Ground truth: attacked, or an internal vulnerability among the
    // rules that actually fired in this window.
    const bool internal_vuln =
        sample.graph.num_nodes() > 0 &&
        VulnerabilityChecker::IsVulnerable(sample.graph);
    sample.label = (sample.attacked || internal_vuln) ? 1 : 0;
    sample.graph.set_label(sample.label);
    if (sample.attacked) sample.graph.set_attack(sample.attack);
    out.push_back(std::move(sample));
  }
  rng->Shuffle(&out);
  return out;
}

}  // namespace fexiot
