#include "nlp/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/ops.h"

namespace fexiot {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Generic DTW over a cost callback; returns accumulated cost / path length.
template <typename CostFn>
double DtwImpl(size_t n, size_t m, const CostFn& cost) {
  if (n == 0 && m == 0) return 0.0;
  if (n == 0 || m == 0) return 2.0;  // maximal normalized distance
  // dp[i][j]: best accumulated cost ending at (i, j); steps[i][j]: path len.
  std::vector<std::vector<double>> dp(n, std::vector<double>(m, kInf));
  std::vector<std::vector<int>> steps(n, std::vector<int>(m, 0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double c = cost(i, j);
      if (i == 0 && j == 0) {
        dp[i][j] = c;
        steps[i][j] = 1;
        continue;
      }
      double best = kInf;
      int best_steps = 0;
      auto consider = [&](size_t pi, size_t pj) {
        if (dp[pi][pj] < best) {
          best = dp[pi][pj];
          best_steps = steps[pi][pj];
        }
      };
      if (i > 0) consider(i - 1, j);
      if (j > 0) consider(i, j - 1);
      if (i > 0 && j > 0) consider(i - 1, j - 1);
      dp[i][j] = best + c;
      steps[i][j] = best_steps + 1;
    }
  }
  return dp[n - 1][m - 1] / steps[n - 1][m - 1];
}

}  // namespace

double DtwDistance(const std::vector<std::vector<double>>& a,
                   const std::vector<std::vector<double>>& b) {
  return DtwImpl(a.size(), b.size(), [&](size_t i, size_t j) {
    return 1.0 - CosineSimilarity(a[i], b[j]);
  });
}

double DtwDistanceScalar(const std::vector<double>& a,
                         const std::vector<double>& b) {
  return DtwImpl(a.size(), b.size(), [&](size_t i, size_t j) {
    return std::fabs(a[i] - b[j]);
  });
}

}  // namespace fexiot
