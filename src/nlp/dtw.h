#pragma once

#include <vector>

namespace fexiot {

/// \brief Dynamic time warping distance between two sequences of embedding
/// vectors (Section III-A1: similarity of verb / object element sequences
/// of different lengths).
///
/// Cost between elements is 1 - cosine similarity, so the distance is 0 for
/// identical sequences and grows with semantic divergence. The result is
/// normalized by the warping path length, keeping it in [0, 2].
double DtwDistance(const std::vector<std::vector<double>>& a,
                   const std::vector<std::vector<double>>& b);

/// \brief DTW over scalar sequences with absolute-difference cost,
/// normalized by path length.
double DtwDistanceScalar(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace fexiot
