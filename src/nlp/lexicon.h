#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fexiot {

/// \brief Lexical relations queried by the causal-relation features
/// (synonym / hypernym / meronym / holonym, Section III-A1 of the paper).
enum class LexicalRelation {
  kNone = 0,
  kSynonym,
  kHypernym,  // a IS-A b (b generalizes a)
  kMeronym,   // a is PART-OF b
  kHolonym,   // a HAS-PART b
};

/// \brief Built-in smart-home domain lexicon.
///
/// Substitutes for WordNet in the paper's causal-relation features: a
/// curated set of synonym groups, IS-A edges and PART-OF edges over the
/// device / attribute / action vocabulary that the platform rule generators
/// draw from. Also exposes semantic cluster ids used to give hashed word
/// embeddings a distributional prior.
class Lexicon {
 public:
  /// Returns the process-wide lexicon (immutable after construction).
  static const Lexicon& Get();

  /// True if \p a and \p b belong to the same synonym group.
  bool AreSynonyms(const std::string& a, const std::string& b) const;

  /// True if \p a IS-A \p b (directly or transitively).
  bool IsHypernym(const std::string& a, const std::string& b) const;

  /// True if \p a is part of \p b.
  bool IsMeronym(const std::string& a, const std::string& b) const;

  /// Strongest relation between the two words (checks both directions for
  /// meronym/holonym).
  LexicalRelation Relation(const std::string& a, const std::string& b) const;

  /// True if the two words are causally associated in the smart-home
  /// domain (a heater raises temperature, an open valve causes leaks...).
  /// Symmetric. Used by the causal-relation features of Section III-A1.
  bool AreCausallyAssociated(const std::string& a,
                             const std::string& b) const;

  /// Canonical representative of the word's synonym group (the word itself
  /// if unknown).
  const std::string& Canonical(const std::string& word) const;

  /// Semantic cluster id for embedding priors; 0 for unknown words.
  /// Cluster ids are stable across runs.
  int ClusterId(const std::string& word) const;
  int num_clusters() const { return num_clusters_; }

  /// True if the word is a known action verb (turn, open, lock, ...).
  bool IsActionVerb(const std::string& word) const;
  /// True if the word is a known device/sensor noun.
  bool IsDeviceNoun(const std::string& word) const;
  /// True if the word names a device attribute/state (on, off, open, ...).
  bool IsStateWord(const std::string& word) const;

  /// All known device nouns (canonical forms).
  const std::vector<std::string>& device_nouns() const {
    return device_nouns_;
  }
  /// All known action verbs.
  const std::vector<std::string>& action_verbs() const {
    return action_verbs_;
  }

 private:
  Lexicon();

  void AddSynonymGroup(const std::vector<std::string>& words);
  void AddHypernym(const std::string& child, const std::string& parent);
  void AddMeronym(const std::string& part, const std::string& whole);
  void AddCausalAssociation(const std::string& a, const std::string& b);

  std::unordered_map<std::string, int> synonym_group_;
  std::vector<std::string> group_canonical_;
  std::unordered_map<std::string, std::vector<std::string>> hypernyms_;
  std::unordered_map<std::string, std::vector<std::string>> meronyms_;
  std::unordered_set<std::string> causal_pairs_;
  std::unordered_map<std::string, int> cluster_;
  int num_clusters_ = 0;
  std::unordered_set<std::string> action_verbs_set_;
  std::unordered_set<std::string> device_nouns_set_;
  std::unordered_set<std::string> state_words_;
  std::vector<std::string> device_nouns_;
  std::vector<std::string> action_verbs_;
};

}  // namespace fexiot
