#pragma once

#include <string>
#include <vector>

namespace fexiot {

/// \brief Coarse part-of-speech tags produced by the rule-based tagger.
enum class PosTag {
  kVerb,
  kNoun,
  kAdjective,
  kAdverb,
  kDeterminer,
  kPreposition,
  kConjunction,
  kPronoun,
  kNumber,
  kOther,
};

const char* PosTagToString(PosTag tag);

/// \brief One tagged token.
struct TaggedToken {
  std::string text;
  PosTag tag = PosTag::kOther;
};

/// \brief Linguistic elements extracted from one automation-rule sentence,
/// mirroring what the paper obtains from spaCy dependency parses: the root
/// verb (main task), direct objects (devices), and state/property words.
struct RuleParse {
  std::vector<TaggedToken> tokens;
  /// Root action verbs (e.g. "close" in "close the water valve ...").
  std::vector<std::string> verbs;
  /// Device/direct-object nouns (e.g. "valve", "light").
  std::vector<std::string> objects;
  /// State / property words (e.g. "on", "detected", "low").
  std::vector<std::string> states;
  /// Trigger-clause tokens (after "if"/"when") vs action-clause tokens.
  std::vector<std::string> trigger_clause;
  std::vector<std::string> action_clause;
};

/// \brief Rule-based POS tagger + shallow clause parser for automation-rule
/// English. Substitutes for the paper's spaCy pipeline: the domain lexicon
/// resolves known verbs/nouns/states and suffix heuristics cover the rest.
class PosTagger {
 public:
  /// Tags each token of \p sentence.
  static std::vector<TaggedToken> Tag(const std::string& sentence);

  /// Full shallow parse: POS tags plus verb/object/state extraction and
  /// trigger/action clause split (on "if"/"when"/"then" markers).
  static RuleParse Parse(const std::string& sentence);
};

}  // namespace fexiot
