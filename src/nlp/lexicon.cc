#include "nlp/lexicon.h"

#include <algorithm>

namespace fexiot {

const Lexicon& Lexicon::Get() {
  static const Lexicon kInstance;
  return kInstance;
}

Lexicon::Lexicon() {
  // --- Synonym groups (first word is the canonical form). Each group also
  // becomes one semantic cluster for the embedding prior. -------------------
  const std::vector<std::vector<std::string>> groups = {
      {"light", "lamp", "bulb", "lights"},
      {"switch", "toggle"},
      {"plug", "outlet", "socket"},
      {"thermostat"},
      {"heater", "radiator"},
      {"ac", "aircon", "airconditioner", "conditioner"},
      {"fan", "ventilator"},
      {"camera", "cam"},
      {"lock", "deadbolt"},
      {"door"},
      {"window"},
      {"blind", "shade", "curtain"},
      {"valve"},
      {"sprinkler", "irrigation"},
      {"alarm", "siren", "beeping"},
      {"smoke"},
      {"co", "monoxide"},
      {"motion", "movement", "presence"},
      {"contact"},
      {"leak", "moisture", "flood"},
      {"humidity"},
      {"temperature", "temp"},
      {"doorbell", "chime"},
      {"vacuum", "roomba"},
      {"coffee", "espresso"},
      {"oven", "stove", "cooker"},
      {"tv", "television"},
      {"speaker", "sound"},
      {"garage"},
      {"heating"},
      {"notification", "notify", "alert", "message"},
      {"water"},
      {"kitchen"},
      {"bedroom"},
      {"bathroom"},
      {"living"},
      {"hallway"},
      {"turn", "switch"},
      {"open", "unlock", "raise"},
      {"close", "shut", "lower"},
      {"start", "activate", "begin", "run"},
      {"stop", "deactivate", "disable", "halt"},
      {"detect", "sense", "detected", "sensed"},
      {"dim", "brighten"},
      {"arrive", "arrives", "arriving", "home"},
      {"leave", "leaves", "away", "depart"},
      {"sunset", "dusk"},
      {"sunrise", "dawn"},
      {"high", "above"},
      {"low", "below"},
      {"on"},
      {"off"},
  };
  for (const auto& g : groups) AddSynonymGroup(g);

  // --- Hypernyms (IS-A). ----------------------------------------------------
  for (const char* device :
       {"light", "switch", "plug", "thermostat", "heater", "ac", "fan",
        "camera", "lock", "blind", "valve", "sprinkler", "alarm", "vacuum",
        "oven", "tv", "speaker", "doorbell"}) {
    AddHypernym(device, "device");
  }
  for (const char* sensor :
       {"smoke", "co", "motion", "contact", "leak", "humidity",
        "temperature"}) {
    AddHypernym(sensor, "sensor");
  }
  AddHypernym("sensor", "device");
  AddHypernym("lamp", "light");
  AddHypernym("deadbolt", "lock");

  // --- Meronyms (PART-OF). --------------------------------------------------
  for (const char* room :
       {"kitchen", "bedroom", "bathroom", "living", "hallway", "garage"}) {
    AddMeronym(room, "house");
  }
  AddMeronym("lock", "door");
  AddMeronym("valve", "pipe");
  AddMeronym("bulb", "light");

  // --- Causal domain associations (device -> affected phenomenon). -----------
  for (const auto& [a, b] : std::initializer_list<std::pair<const char*, const char*>>{
           {"heater", "temperature"}, {"ac", "temperature"},
           {"fan", "temperature"},    {"thermostat", "temperature"},
           {"window", "temperature"}, {"oven", "smoke"},
           {"valve", "leak"},         {"valve", "water"},
           {"sprinkler", "humidity"}, {"blind", "light"},
           {"alarm", "sound"},        {"speaker", "sound"},
           {"tv", "sound"},           {"doorbell", "sound"},
           {"vacuum", "sound"},       {"light", "motion"}}) {
    AddCausalAssociation(a, b);
  }

  // --- Word classes for the POS tagger. -------------------------------------
  for (const char* v :
       {"turn", "open", "close", "lock", "unlock", "start", "stop", "set",
        "dim", "brighten", "send", "notify", "record", "arm", "disarm",
        "activate", "deactivate", "run", "enable", "disable", "shut",
        "raise", "lower", "begin", "halt", "detect", "trigger", "beep",
        "ring", "switch", "play", "pause", "brew", "water", "adjust"}) {
    action_verbs_set_.insert(v);
  }
  for (const char* n :
       {"light", "lamp", "bulb", "switch", "plug", "outlet", "socket",
        "thermostat", "heater", "radiator", "ac", "aircon", "fan",
        "ventilator", "camera", "cam", "lock", "deadbolt", "door", "window",
        "blind", "shade", "curtain", "valve", "sprinkler", "alarm", "siren",
        "detector", "sensor", "doorbell", "chime", "vacuum", "roomba",
        "oven", "stove", "cooker", "tv", "television", "speaker",
        "garage", "gate", "heating"}) {
    device_nouns_set_.insert(n);
  }
  for (const char* s :
       {"on", "off", "open", "closed", "locked", "unlocked", "high", "low",
        "hot", "cold", "wet", "dry", "detected", "cleared", "active",
        "inactive", "running", "stopped", "armed", "disarmed"}) {
    state_words_.insert(s);
  }

  device_nouns_.assign(device_nouns_set_.begin(), device_nouns_set_.end());
  std::sort(device_nouns_.begin(), device_nouns_.end());
  action_verbs_.assign(action_verbs_set_.begin(), action_verbs_set_.end());
  std::sort(action_verbs_.begin(), action_verbs_.end());
}

void Lexicon::AddSynonymGroup(const std::vector<std::string>& words) {
  const int gid = static_cast<int>(group_canonical_.size());
  group_canonical_.push_back(words.front());
  ++num_clusters_;
  for (const auto& w : words) {
    // First group wins if a word appears in several (e.g. "switch").
    synonym_group_.emplace(w, gid);
    cluster_.emplace(w, gid + 1);  // cluster 0 reserved for unknown words
  }
}

void Lexicon::AddHypernym(const std::string& child,
                          const std::string& parent) {
  hypernyms_[child].push_back(parent);
}

void Lexicon::AddMeronym(const std::string& part, const std::string& whole) {
  meronyms_[part].push_back(whole);
}

void Lexicon::AddCausalAssociation(const std::string& a,
                                   const std::string& b) {
  causal_pairs_.insert(a + "\t" + b);
  causal_pairs_.insert(b + "\t" + a);
}

bool Lexicon::AreCausallyAssociated(const std::string& a,
                                    const std::string& b) const {
  return causal_pairs_.count(Canonical(a) + "\t" + Canonical(b)) > 0;
}

bool Lexicon::AreSynonyms(const std::string& a, const std::string& b) const {
  auto ia = synonym_group_.find(a);
  auto ib = synonym_group_.find(b);
  if (ia == synonym_group_.end() || ib == synonym_group_.end()) {
    return false;
  }
  return ia->second == ib->second;
}

bool Lexicon::IsHypernym(const std::string& a, const std::string& b) const {
  const std::string& ca = Canonical(a);
  const std::string& cb = Canonical(b);
  if (ca == cb) return false;
  // BFS up the IS-A chain (chains are tiny: depth <= 3).
  std::vector<std::string> frontier = {ca};
  for (int depth = 0; depth < 4 && !frontier.empty(); ++depth) {
    std::vector<std::string> next;
    for (const auto& w : frontier) {
      auto it = hypernyms_.find(w);
      if (it == hypernyms_.end()) continue;
      for (const auto& parent : it->second) {
        if (Canonical(parent) == cb) return true;
        next.push_back(parent);
      }
    }
    frontier = std::move(next);
  }
  return false;
}

bool Lexicon::IsMeronym(const std::string& a, const std::string& b) const {
  auto it = meronyms_.find(Canonical(a));
  if (it == meronyms_.end()) return false;
  const std::string& cb = Canonical(b);
  for (const auto& whole : it->second) {
    if (Canonical(whole) == cb) return true;
  }
  return false;
}

LexicalRelation Lexicon::Relation(const std::string& a,
                                  const std::string& b) const {
  if (a == b || AreSynonyms(a, b)) return LexicalRelation::kSynonym;
  if (IsHypernym(a, b)) return LexicalRelation::kHypernym;
  if (IsMeronym(a, b)) return LexicalRelation::kMeronym;
  if (IsMeronym(b, a)) return LexicalRelation::kHolonym;
  return LexicalRelation::kNone;
}

const std::string& Lexicon::Canonical(const std::string& word) const {
  auto it = synonym_group_.find(word);
  if (it == synonym_group_.end()) return word;
  return group_canonical_[static_cast<size_t>(it->second)];
}

int Lexicon::ClusterId(const std::string& word) const {
  auto it = cluster_.find(word);
  return it == cluster_.end() ? 0 : it->second;
}

bool Lexicon::IsActionVerb(const std::string& word) const {
  return action_verbs_set_.count(word) > 0;
}

bool Lexicon::IsDeviceNoun(const std::string& word) const {
  return device_nouns_set_.count(word) > 0;
}

bool Lexicon::IsStateWord(const std::string& word) const {
  return state_words_.count(word) > 0;
}

}  // namespace fexiot
