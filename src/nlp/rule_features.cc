#include "nlp/rule_features.h"

#include <algorithm>

#include "common/string_util.h"
#include "nlp/dtw.h"
#include "nlp/embeddings.h"
#include "nlp/lexicon.h"
#include "tensor/ops.h"

namespace fexiot {
namespace {

std::vector<std::vector<double>> EmbedAll(
    const std::vector<std::string>& words) {
  std::vector<std::vector<double>> out;
  out.reserve(words.size());
  for (const auto& w : words) out.push_back(WordEmbedding::Embed(w));
  return out;
}

// Fraction of words in `a` that have a synonym match in `b`.
double OverlapRatio(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const Lexicon& lex = Lexicon::Get();
  int hits = 0;
  for (const auto& wa : a) {
    for (const auto& wb : b) {
      if (wa == wb || lex.AreSynonyms(wa, wb)) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(a.size());
}

// Relation one-hots between two word lists:
// [syn, hyper, mero, holo, causal].
void RelationOneHots(const std::vector<std::string>& a,
                     const std::vector<std::string>& b, double* out5) {
  const Lexicon& lex = Lexicon::Get();
  double* out4 = out5;
  for (int i = 0; i < 5; ++i) out5[i] = 0.0;
  for (const auto& wa : a) {
    for (const auto& wb : b) {
      if (lex.AreCausallyAssociated(wa, wb)) out5[4] = 1.0;
      switch (lex.Relation(wa, wb)) {
        case LexicalRelation::kSynonym:
          out4[0] = 1.0;
          break;
        case LexicalRelation::kHypernym:
          out4[1] = 1.0;
          break;
        case LexicalRelation::kMeronym:
          out4[2] = 1.0;
          break;
        case LexicalRelation::kHolonym:
          out4[3] = 1.0;
          break;
        case LexicalRelation::kNone:
          break;
      }
    }
  }
}

std::string JoinWords(const std::vector<std::string>& words) {
  return Join(words, " ");
}

}  // namespace

std::vector<double> RuleFeatureExtractor::ExtractPairFeatures(
    const RuleParse& rule_a, const RuleParse& rule_b) {
  std::vector<double> f;
  f.reserve(kPairFeatureDim);

  // The causal direction of interest: A's *action* clause feeding B's
  // *trigger* clause. Fall back to all objects when clause split found
  // nothing (terse voice-assistant commands have no explicit if/when).
  const std::vector<std::string>& a_action =
      rule_a.action_clause.empty() ? rule_a.objects : rule_a.action_clause;
  const std::vector<std::string>& b_trigger =
      rule_b.trigger_clause.empty() ? rule_b.objects : rule_b.trigger_clause;

  // (1) Similarity features.
  f.push_back(DtwDistance(EmbedAll(rule_a.verbs), EmbedAll(rule_b.verbs)));
  f.push_back(
      DtwDistance(EmbedAll(rule_a.objects), EmbedAll(rule_b.objects)));
  f.push_back(DtwDistance(EmbedAll(a_action), EmbedAll(b_trigger)));
  f.push_back(OverlapRatio(rule_a.objects, rule_b.objects));
  f.push_back(OverlapRatio(a_action, b_trigger));
  f.push_back(OverlapRatio(rule_a.states, rule_b.states));

  // (2) Causal relation one-hots between A's action words and B's trigger
  // words, then between full object lists.
  double rel[5];
  RelationOneHots(a_action, b_trigger, rel);
  f.insert(f.end(), rel, rel + 5);

  // (3) Sentence-level features.
  const std::vector<double> emb_a_action =
      SentenceEncoder::Encode(JoinWords(a_action));
  const std::vector<double> emb_b_trigger =
      SentenceEncoder::Encode(JoinWords(b_trigger));
  f.push_back(CosineSimilarity(emb_a_action, emb_b_trigger));

  const std::vector<double> emb_a = SentenceEncoder::Encode(
      JoinWords(rule_a.trigger_clause) + " " + JoinWords(rule_a.action_clause));
  const std::vector<double> emb_b = SentenceEncoder::Encode(
      JoinWords(rule_b.trigger_clause) + " " + JoinWords(rule_b.action_clause));
  f.push_back(CosineSimilarity(emb_a, emb_b));

  // Structure features: clause lengths (normalized).
  f.push_back(std::min(1.0, static_cast<double>(a_action.size()) / 8.0));
  f.push_back(std::min(1.0, static_cast<double>(b_trigger.size()) / 8.0));

  return f;
}

std::vector<double> RuleFeatureExtractor::ExtractPairFeatures(
    const std::string& sentence_a, const std::string& sentence_b) {
  return ExtractPairFeatures(PosTagger::Parse(sentence_a),
                             PosTagger::Parse(sentence_b));
}

std::vector<std::string> RuleFeatureExtractor::FeatureNames() {
  return {
      "dtw_verbs",        "dtw_objects",      "dtw_action_trigger",
      "overlap_objects",  "overlap_act_trig", "overlap_states",
      "rel_synonym",      "rel_hypernym",     "rel_meronym",
      "rel_holonym",      "rel_causal",       "cos_act_trig",
      "cos_sentences",    "len_action",       "len_trigger",
  };
}

}  // namespace fexiot
