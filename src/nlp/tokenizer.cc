#include "nlp/tokenizer.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace fexiot {
namespace {

const std::unordered_set<std::string>& StopwordSet() {
  static const std::unordered_set<std::string> kStopwords = {
      "the", "a",  "an", "is",  "are",  "was", "be",   "been", "to",
      "of",  "in", "on", "at",  "and",  "or",  "it",   "its",  "my",
      "your", "this", "that", "there", "with", "for", "will", "then",
      "if",  "when",
  };
  return kStopwords;
}

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) {
  std::string cleaned;
  cleaned.reserve(text.size());
  for (char ch : text) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      cleaned += static_cast<char>(std::tolower(c));
    } else if (ch == '_' || ch == '-') {
      // Treat snake/kebab compounds as separate words.
      cleaned += ' ';
    } else if (std::isspace(c)) {
      cleaned += ' ';
    }
    // Other punctuation dropped.
  }
  return SplitWhitespace(cleaned);
}

std::vector<std::string> Tokenizer::TokenizeContent(std::string_view text) {
  std::vector<std::string> tokens = Tokenize(text);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (auto& t : tokens) {
    if (!IsStopword(t)) out.push_back(std::move(t));
  }
  return out;
}

bool Tokenizer::IsStopword(const std::string& token) {
  return StopwordSet().count(token) > 0;
}

}  // namespace fexiot
