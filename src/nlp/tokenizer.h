#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fexiot {

/// \brief Rule-text tokenizer: lower-cases, strips punctuation, splits on
/// whitespace. Multi-word device names ("water valve") survive as separate
/// tokens; downstream components re-join known compounds via the Lexicon.
class Tokenizer {
 public:
  /// Tokenizes \p text; punctuation is dropped, digits kept.
  static std::vector<std::string> Tokenize(std::string_view text);

  /// Tokenizes and removes stopwords ("the", "a", "is", ...).
  static std::vector<std::string> TokenizeContent(std::string_view text);

  /// True if \p token is a stopword.
  static bool IsStopword(const std::string& token);
};

}  // namespace fexiot
