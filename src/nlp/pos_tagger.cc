#include "nlp/pos_tagger.h"

#include <unordered_set>

#include "common/string_util.h"
#include "nlp/lexicon.h"
#include "nlp/tokenizer.h"

namespace fexiot {
namespace {

const std::unordered_set<std::string>& Determiners() {
  static const std::unordered_set<std::string> kSet = {"the", "a", "an",
                                                       "this", "that", "any"};
  return kSet;
}

const std::unordered_set<std::string>& Prepositions() {
  static const std::unordered_set<std::string> kSet = {
      "in", "on", "at", "to", "of", "from", "over", "under", "into", "by"};
  return kSet;
}

const std::unordered_set<std::string>& Conjunctions() {
  static const std::unordered_set<std::string> kSet = {"and", "or", "if",
                                                       "when", "then", "but"};
  return kSet;
}

const std::unordered_set<std::string>& Pronouns() {
  static const std::unordered_set<std::string> kSet = {"i",  "you", "it",
                                                       "my", "your", "me"};
  return kSet;
}

const std::unordered_set<std::string>& CopulaVerbs() {
  static const std::unordered_set<std::string> kSet = {"is",  "are", "was",
                                                       "be", "been", "gets"};
  return kSet;
}

bool IsNumber(const std::string& w) {
  if (w.empty()) return false;
  for (char c : w) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

PosTag TagWord(const std::string& w) {
  const Lexicon& lex = Lexicon::Get();
  if (Determiners().count(w)) return PosTag::kDeterminer;
  if (Prepositions().count(w)) return PosTag::kPreposition;
  if (Conjunctions().count(w)) return PosTag::kConjunction;
  if (Pronouns().count(w)) return PosTag::kPronoun;
  if (IsNumber(w)) return PosTag::kNumber;
  if (CopulaVerbs().count(w)) return PosTag::kVerb;
  if (lex.IsActionVerb(w)) return PosTag::kVerb;
  if (lex.IsDeviceNoun(w)) return PosTag::kNoun;
  if (lex.IsStateWord(w)) return PosTag::kAdjective;
  // Suffix heuristics for open-class words.
  if (EndsWith(w, "ly")) return PosTag::kAdverb;
  if (EndsWith(w, "ing") || EndsWith(w, "ed")) return PosTag::kVerb;
  if (EndsWith(w, "ness") || EndsWith(w, "tion") || EndsWith(w, "ment") ||
      EndsWith(w, "er") || EndsWith(w, "or")) {
    return PosTag::kNoun;
  }
  return PosTag::kNoun;  // default open-class guess
}

}  // namespace

const char* PosTagToString(PosTag tag) {
  switch (tag) {
    case PosTag::kVerb:
      return "VERB";
    case PosTag::kNoun:
      return "NOUN";
    case PosTag::kAdjective:
      return "ADJ";
    case PosTag::kAdverb:
      return "ADV";
    case PosTag::kDeterminer:
      return "DET";
    case PosTag::kPreposition:
      return "PREP";
    case PosTag::kConjunction:
      return "CONJ";
    case PosTag::kPronoun:
      return "PRON";
    case PosTag::kNumber:
      return "NUM";
    case PosTag::kOther:
      return "X";
  }
  return "?";
}

std::vector<TaggedToken> PosTagger::Tag(const std::string& sentence) {
  std::vector<TaggedToken> out;
  for (const auto& w : Tokenizer::Tokenize(sentence)) {
    out.push_back({w, TagWord(w)});
  }
  return out;
}

RuleParse PosTagger::Parse(const std::string& sentence) {
  RuleParse parse;
  parse.tokens = Tag(sentence);
  const Lexicon& lex = Lexicon::Get();

  // Clause split: tokens following "if"/"when" (until "then" or end) form
  // the trigger clause; everything else is the action clause.
  bool in_trigger = false;
  for (const auto& tok : parse.tokens) {
    if (tok.text == "if" || tok.text == "when") {
      in_trigger = true;
      continue;
    }
    if (tok.text == "then") {
      in_trigger = false;
      continue;
    }
    (in_trigger ? parse.trigger_clause : parse.action_clause)
        .push_back(tok.text);
  }

  for (const auto& tok : parse.tokens) {
    if (tok.tag == PosTag::kVerb && lex.IsActionVerb(tok.text)) {
      parse.verbs.push_back(tok.text);
    } else if (lex.IsDeviceNoun(tok.text)) {
      parse.objects.push_back(tok.text);
    } else if (lex.IsStateWord(tok.text)) {
      parse.states.push_back(tok.text);
    }
  }
  // Capture sensor-noun triggers ("smoke", "motion") that are not in the
  // device-noun set but have lexicon clusters.
  for (const auto& tok : parse.tokens) {
    if (tok.tag == PosTag::kNoun && !lex.IsDeviceNoun(tok.text) &&
        lex.ClusterId(tok.text) != 0 && !lex.IsStateWord(tok.text) &&
        !lex.IsActionVerb(tok.text)) {
      parse.objects.push_back(tok.text);
    }
  }
  return parse;
}

}  // namespace fexiot
