#pragma once

#include <string>
#include <vector>

namespace fexiot {

/// \brief Deterministic 300-d word embeddings with a semantic prior.
///
/// Substitutes for spaCy `en_core_web_lg` vectors: each word maps to
/// cluster_centroid(lexicon cluster) + hashed residual noise. Words in the
/// same synonym group share a centroid, so cosine similarity reflects
/// semantic relatedness the way distributional vectors do, while unknown
/// words still receive stable (hash-seeded) vectors.
class WordEmbedding {
 public:
  static constexpr int kDim = 300;

  /// Returns the (unit-norm) embedding of \p word.
  static std::vector<double> Embed(const std::string& word);

  /// Mean of word embeddings for a token sequence; zero vector if empty.
  static std::vector<double> EmbedMean(const std::vector<std::string>& words);
};

/// \brief Deterministic 512-d sentence encoder.
///
/// Substitutes for the Universal Sentence Encoder: a projection of the mean
/// word embedding concatenated with hashed bigram features, L2-normalized.
/// Paraphrases (shared content words) land close in this space.
class SentenceEncoder {
 public:
  static constexpr int kDim = 512;

  /// Returns the (unit-norm) embedding of \p sentence.
  static std::vector<double> Encode(const std::string& sentence);
};

/// \brief Trigger-action pair embedding (Eq. 1 of the paper): the sum of
/// mean word embeddings of the trigger and action sentences. Used as the
/// node feature of interaction graphs built from rule descriptions.
std::vector<double> TriggerActionPairEmbedding(
    const std::string& trigger_sentence, const std::string& action_sentence);

}  // namespace fexiot
