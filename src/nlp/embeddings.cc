#include "nlp/embeddings.h"

#include <cmath>
#include <unordered_map>

#include "common/rng.h"
#include "common/string_util.h"
#include "nlp/lexicon.h"
#include "nlp/tokenizer.h"
#include "tensor/ops.h"

namespace fexiot {
namespace {

// Fills `out` with unit-variance pseudo-random values seeded by `seed`.
void HashVector(uint64_t seed, std::vector<double>* out) {
  Rng rng(seed);
  for (auto& x : *out) x = rng.Normal();
}

void Normalize(std::vector<double>* v) {
  const double n = VectorNorm(*v);
  if (n > 1e-12) {
    for (auto& x : *v) x /= n;
  }
}

void AxPlusY(double a, const std::vector<double>& x, std::vector<double>* y) {
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += a * x[i];
}

}  // namespace

std::vector<double> WordEmbedding::Embed(const std::string& word) {
  // Embeddings are deterministic; memoize per thread (corpus generation
  // embeds the same device/action vocabulary millions of times).
  thread_local std::unordered_map<std::string, std::vector<double>> cache;
  auto it = cache.find(word);
  if (it != cache.end()) return it->second;
  const Lexicon& lex = Lexicon::Get();
  const int cluster = lex.ClusterId(word);
  std::vector<double> vec(kDim, 0.0);
  if (cluster != 0) {
    // Shared centroid per synonym group dominates the vector...
    std::vector<double> centroid(kDim);
    HashVector(0x1000000ULL + static_cast<uint64_t>(cluster), &centroid);
    AxPlusY(0.85, centroid, &vec);
    // ... plus a small word-specific residual.
    std::vector<double> residual(kDim);
    HashVector(HashString(word), &residual);
    AxPlusY(0.25, residual, &vec);
  } else {
    HashVector(HashString(word), &vec);
  }
  Normalize(&vec);
  cache.emplace(word, vec);
  return vec;
}

std::vector<double> WordEmbedding::EmbedMean(
    const std::vector<std::string>& words) {
  std::vector<double> out(kDim, 0.0);
  if (words.empty()) return out;
  for (const auto& w : words) {
    const std::vector<double> e = Embed(w);
    AxPlusY(1.0 / static_cast<double>(words.size()), e, &out);
  }
  return out;
}

std::vector<double> SentenceEncoder::Encode(const std::string& sentence) {
  const std::vector<std::string> tokens =
      Tokenizer::TokenizeContent(sentence);
  std::vector<double> out(kDim, 0.0);
  if (tokens.empty()) return out;

  // First 300 dims: mean content-word embedding.
  const std::vector<double> mean = WordEmbedding::EmbedMean(tokens);
  for (int i = 0; i < WordEmbedding::kDim; ++i) out[i] = mean[i];

  // Remaining dims: hashed bigram features (order-sensitive component).
  const int kBigramDim = kDim - WordEmbedding::kDim;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    const uint64_t h = HashString(tokens[i] + "_" + tokens[i + 1]);
    const int slot = static_cast<int>(h % static_cast<uint64_t>(kBigramDim));
    const double sign = ((h >> 32) & 1) ? 1.0 : -1.0;
    out[WordEmbedding::kDim + slot] +=
        sign / static_cast<double>(tokens.size());
  }
  Normalize(&out);
  return out;
}

namespace {

// Multi-grained key-phrase token list for one clause (Section III-A1):
// content words, with device/state words repeated for salience, plus
// device_state compound tokens ("valve_open") so that the exact
// device-state pairing — the signal that separates action conflicts and
// duplicates from benign sibling rules — survives the mean pooling.
std::vector<std::string> KeyPhraseTokens(const std::string& sentence) {
  const Lexicon& lex = Lexicon::Get();
  std::vector<std::string> tokens = Tokenizer::TokenizeContent(sentence);
  std::vector<std::string> out = tokens;
  std::string last_device;
  for (const auto& t : tokens) {
    if (lex.IsDeviceNoun(t)) {
      out.push_back(t);  // device words weighted 2x
      last_device = lex.Canonical(t);
    } else if (lex.IsStateWord(t)) {
      out.push_back(t);  // state words weighted 2x
      if (!last_device.empty()) {
        out.push_back(last_device + "_" + t);
      }
    }
  }
  // "turn on the light": the state word precedes the device; pair the
  // first state word with the first device too.
  std::string first_state, first_device;
  for (const auto& t : tokens) {
    if (first_state.empty() && lex.IsStateWord(t)) first_state = t;
    if (first_device.empty() && lex.IsDeviceNoun(t)) {
      first_device = lex.Canonical(t);
    }
  }
  if (!first_state.empty() && !first_device.empty()) {
    out.push_back(first_device + "_" + first_state);
  }
  return out;
}

}  // namespace

std::vector<double> TriggerActionPairEmbedding(
    const std::string& trigger_sentence, const std::string& action_sentence) {
  const std::vector<double> trig =
      WordEmbedding::EmbedMean(KeyPhraseTokens(trigger_sentence));
  const std::vector<double> act =
      WordEmbedding::EmbedMean(KeyPhraseTokens(action_sentence));
  std::vector<double> out(WordEmbedding::kDim);
  for (int i = 0; i < WordEmbedding::kDim; ++i) out[i] = trig[i] + act[i];
  return out;
}

}  // namespace fexiot
