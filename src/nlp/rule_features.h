#pragma once

#include <string>
#include <vector>

#include "nlp/pos_tagger.h"

namespace fexiot {

/// \brief Correlation features between rule A's action and rule B's trigger
/// (Section III-A1). These feed the "action-trigger" correlation classifier
/// of Section III-A3 / Figure 3.
///
/// Feature groups:
///   1. similarity features — DTW distance over verb / object embedding
///      sequences and direct object-overlap ratios;
///   2. causal relation features — one-hot synonym / hypernym / meronym /
///      holonym indicators between action objects and trigger objects;
///   3. sentence-level features — cosine of sentence embeddings and of the
///      trigger-action pair embedding halves.
class RuleFeatureExtractor {
 public:
  /// Dimensionality of ExtractPairFeatures output.
  static constexpr int kPairFeatureDim = 15;

  /// \brief Extracts the correlation feature vector for an ordered pair
  /// (rule_a.action -> rule_b.trigger).
  static std::vector<double> ExtractPairFeatures(const RuleParse& rule_a,
                                                 const RuleParse& rule_b);

  /// Convenience overload parsing raw sentences.
  static std::vector<double> ExtractPairFeatures(
      const std::string& sentence_a, const std::string& sentence_b);

  /// Names of the feature dimensions (for docs/tests).
  static std::vector<std::string> FeatureNames();
};

}  // namespace fexiot
