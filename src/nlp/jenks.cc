#include "nlp/jenks.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace fexiot {

std::vector<double> JenksBreaks::Compute(std::vector<double> values,
                                         int num_classes) {
  assert(num_classes >= 1);
  assert(values.size() >= static_cast<size_t>(num_classes));
  std::sort(values.begin(), values.end());
  const int n = static_cast<int>(values.size());
  const int k = num_classes;

  // Prefix sums for O(1) within-class variance queries.
  std::vector<double> pre(n + 1, 0.0), pre2(n + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    pre[i + 1] = pre[i] + values[i];
    pre2[i + 1] = pre2[i] + values[i] * values[i];
  }
  auto ssd = [&](int lo, int hi) {  // sum of squared deviations, [lo, hi)
    const int cnt = hi - lo;
    if (cnt <= 0) return 0.0;
    const double s = pre[hi] - pre[lo];
    const double s2 = pre2[hi] - pre2[lo];
    return s2 - s * s / cnt;
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[c][i]: min total SSD splitting first i values into c classes.
  std::vector<std::vector<double>> dp(k + 1,
                                      std::vector<double>(n + 1, kInf));
  std::vector<std::vector<int>> cut(k + 1, std::vector<int>(n + 1, 0));
  dp[0][0] = 0.0;
  for (int c = 1; c <= k; ++c) {
    for (int i = c; i <= n; ++i) {
      for (int j = c - 1; j < i; ++j) {
        if (dp[c - 1][j] == kInf) continue;
        const double cand = dp[c - 1][j] + ssd(j, i);
        if (cand < dp[c][i]) {
          dp[c][i] = cand;
          cut[c][i] = j;
        }
      }
    }
  }

  // Recover boundaries.
  std::vector<double> bounds(static_cast<size_t>(k) + 1);
  bounds[0] = values.front();
  bounds[static_cast<size_t>(k)] = values.back();
  int i = n;
  for (int c = k; c >= 2; --c) {
    const int j = cut[c][i];
    bounds[static_cast<size_t>(c) - 1] = values[j - 1];
    i = j;
  }
  return bounds;
}

int JenksBreaks::Classify(double value,
                          const std::vector<double>& boundaries) {
  assert(boundaries.size() >= 2);
  const int num_classes = static_cast<int>(boundaries.size()) - 1;
  for (int c = 0; c < num_classes - 1; ++c) {
    if (value <= boundaries[static_cast<size_t>(c) + 1]) return c;
  }
  return num_classes - 1;
}

std::string JenksBreaks::ClassLabel(int class_index, int num_classes) {
  if (num_classes == 2) return class_index == 0 ? "low" : "high";
  if (num_classes == 3) {
    if (class_index == 0) return "low";
    if (class_index == 1) return "medium";
    return "high";
  }
  return "class" + std::to_string(class_index);
}

}  // namespace fexiot
