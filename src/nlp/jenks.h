#pragma once

#include <string>
#include <vector>

namespace fexiot {

/// \brief Jenks natural-breaks classification.
///
/// Used to convert numeric sensor readings in event logs (e.g. "humidity is
/// 32") into the logical values app descriptions use ("humidity is low"),
/// per Section III-A2. Breaks minimize in-class variance via the classic
/// Fisher-Jenks dynamic program.
class JenksBreaks {
 public:
  /// Computes \p num_classes - 1 interior break values for \p values.
  /// Returns the full boundary list (num_classes + 1 values including min
  /// and max). Requires values.size() >= num_classes >= 1.
  static std::vector<double> Compute(std::vector<double> values,
                                     int num_classes);

  /// Maps \p value to a class index in [0, num_classes) given boundaries
  /// from Compute().
  static int Classify(double value, const std::vector<double>& boundaries);

  /// Convenience labels for 2/3-class breaks ("low"/"high",
  /// "low"/"medium"/"high").
  static std::string ClassLabel(int class_index, int num_classes);
};

}  // namespace fexiot
